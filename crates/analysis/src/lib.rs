//! # wmm-analysis — static scoped-communication analyzer
//!
//! A static counterpart to the dynamic litmus campaigns: it abstracts a
//! [`Program`] per thread with a lightweight abstract interpretation
//! ([`absint`]), builds a cross-thread conflict graph from the launch
//! geometry, and runs Shasha–Snir delay-set detection ([`delay`]) to
//! find the program-order pairs a weak memory model may break.
//!
//! Results ([`report`]) come in three forms:
//!
//! * **warnings** — one per unfenced critical cycle, annotated with the
//!   minimal fence level that orders it (`block` when the communication
//!   is provably intra-block shared-space, `device` otherwise);
//! * **verdicts** — per fence site: `Required(Device)`,
//!   `DemotableToBlock`, or `RemovalCandidate`, consumed by the scoped
//!   empirical fence-insertion search in `wmm-core`;
//! * **quiet certificates** — an analysis with zero warnings certifies
//!   that every delay pair is already ordered by a fence or barrier.
//!
//! ## Soundness contract
//!
//! For litmus instances the analysis threads are *exact*: one model per
//! test thread with its concrete `tid`/`bid`, so the conflict graph
//! over-approximates nothing it shouldn't and misses nothing — every
//! weak behavior the dynamic suite can observe corresponds to a
//! warning (`tests/static_dynamic_agreement.rs` enforces this over the
//! whole shape catalogue). The contract is per chip: on chips whose
//! SM-private L1s are incoherent, same-address global load-load pairs
//! can go weak structurally, so the chip-aware entry points
//! ([`analyze_litmus_on_chip`], [`analyze_program_on_chip`]) add the L1
//! read-read channel instead of coherence-exempting those pairs. For
//! applications, callers choose a bounded set of representative
//! threads; the result is a heuristic (still conservative per modeled
//! thread) rather than a proof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod delay;
pub mod report;

pub use absint::{AbsVal, ThreadAbs, ThreadCtx};
pub use delay::{delay_edges, l1_read_read_edges, DelayEdge, Event, ThreadModel};
pub use report::{summarize, DelayWarning, ProgramAnalysis, SiteReport, Verdict};

use wmm_litmus::{LitmusInstance, Placement};
use wmm_sim::chip::Chip;
use wmm_sim::ir::FenceLevel;
use wmm_sim::Program;

/// One analysis thread's identity within the launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRep {
    /// Logical block id.
    pub bid: u32,
    /// Logical thread id within the block.
    pub tid: u32,
}

/// A program plus the launch geometry to analyze it under.
#[derive(Debug, Clone)]
pub struct AnalysisInput<'a> {
    /// The kernel.
    pub program: &'a Program,
    /// The threads to model (exact for litmus, representative for
    /// apps).
    pub reps: Vec<ThreadRep>,
    /// Threads per block of the launch.
    pub block_dim: u32,
    /// Blocks of the launch.
    pub grid_dim: u32,
}

fn models_for(input: &AnalysisInput<'_>) -> Vec<ThreadModel> {
    input
        .reps
        .iter()
        .map(|r| {
            ThreadModel::build(
                input.program,
                ThreadCtx {
                    tid: r.tid,
                    bid: r.bid,
                    block_dim: input.block_dim,
                    grid_dim: input.grid_dim,
                },
            )
        })
        .collect()
}

/// Analyze a program under a launch geometry, chip-independently: the
/// delay set every chip's in-flight reordering can break. Same-address
/// pairs are coherence-exempt here; for chips whose SM-private L1s are
/// incoherent, use [`analyze_program_on_chip`], which adds the
/// structural read-read channel.
pub fn analyze_program(input: &AnalysisInput<'_>) -> ProgramAnalysis {
    let models = models_for(input);
    let edges = delay_edges(input.program, &models);
    summarize(input.program, &edges)
}

/// Analyze a program under a launch geometry **on a specific chip**:
/// the chip-independent delay set, plus — when `chip.l1_weak()` — the
/// incoherent-L1 read-read edges ([`l1_read_read_edges`]), so
/// same-address global load-load pairs warn instead of being
/// coherence-exempt. On coherent-L1 chips this is identical to
/// [`analyze_program`].
pub fn analyze_program_on_chip(input: &AnalysisInput<'_>, chip: &Chip) -> ProgramAnalysis {
    let models = models_for(input);
    let mut edges = delay_edges(input.program, &models);
    if chip.l1_weak() {
        edges.extend(l1_read_read_edges(input.program, &models));
    }
    summarize(input.program, &edges)
}

/// The exact analysis threads for a litmus instance: the lane-0 test
/// threads the emitted kernel gates on, one per litmus thread.
pub fn litmus_reps(placement: Placement, threads: u32) -> (Vec<ThreadRep>, u32, u32) {
    match placement {
        Placement::InterBlock => (
            (0..threads).map(|t| ThreadRep { bid: t, tid: 0 }).collect(),
            32,
            threads,
        ),
        Placement::IntraBlock => (
            (0..threads)
                .map(|t| ThreadRep {
                    bid: 0,
                    tid: 32 * t,
                })
                .collect(),
            32 * threads,
            1,
        ),
    }
}

/// Analyze a litmus instance with exact per-test-thread models,
/// chip-independently.
pub fn analyze_litmus(li: &LitmusInstance) -> ProgramAnalysis {
    let (reps, block_dim, grid_dim) = litmus_reps(li.placement, li.threads);
    analyze_program(&AnalysisInput {
        program: li.program.as_ref(),
        reps,
        block_dim,
        grid_dim,
    })
}

/// Analyze a litmus instance with exact per-test-thread models on a
/// specific chip — see [`analyze_program_on_chip`] for what the chip
/// adds.
pub fn analyze_litmus_on_chip(li: &LitmusInstance, chip: &Chip) -> ProgramAnalysis {
    let (reps, block_dim, grid_dim) = litmus_reps(li.placement, li.threads);
    analyze_program_on_chip(
        &AnalysisInput {
            program: li.program.as_ref(),
            reps,
            block_dim,
            grid_dim,
        },
        chip,
    )
}

/// Relative runtime cost of one fence at the given level. A device
/// fence drains the window against global traffic; a block fence only
/// synchronises within the block, which every chip table prices far
/// cheaper (`block_fence_stall` vs `fence_stall`).
pub fn fence_cost(level: FenceLevel) -> u64 {
    match level {
        FenceLevel::Block => 1,
        FenceLevel::Device => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_gen::Shape;
    use wmm_litmus::LitmusLayout;
    use wmm_sim::ir::Space;
    use wmm_sim::KernelBuilder;

    fn instance(shape: Shape) -> LitmusInstance {
        shape.instance(LitmusLayout::standard(64, 2048))
    }

    #[test]
    fn mp_warns_at_device_level() {
        let a = analyze_litmus(&instance(Shape::Mp));
        assert!(!a.quiet(), "MP communicates weakly through global memory");
        assert_eq!(a.max_warning_level(), Some(FenceLevel::Device));
        // Both the writer pair and the reader pair warn.
        assert!(a.warnings.len() >= 2, "{:?}", a.warnings);
    }

    #[test]
    fn mp_fences_is_certified_quiet() {
        let a = analyze_litmus(&instance(Shape::MpFences));
        assert!(a.quiet(), "fenced MP must be quiet: {:?}", a.warnings);
        assert!(a.ordered_edges >= 2, "the fences order the delay pairs");
    }

    #[test]
    fn scoped_mp_is_demotable_to_block() {
        let a = analyze_litmus(&instance(Shape::MpShared));
        assert!(!a.quiet());
        assert_eq!(
            a.max_warning_level(),
            Some(FenceLevel::Block),
            "intra-block shared communication needs only block fences: {:?}",
            a.warnings
        );
        assert!(
            a.sites
                .iter()
                .any(|s| s.verdict == Verdict::DemotableToBlock),
            "{:?}",
            a.sites
        );
    }

    #[test]
    fn coherence_shapes_are_quiet() {
        for shape in [Shape::CoRR, Shape::CoWW, Shape::CoAdd, Shape::CoRRShared] {
            let a = analyze_litmus(&instance(shape));
            assert!(
                a.quiet(),
                "{shape:?} is same-location only, no delay: {:?}",
                a.warnings
            );
        }
    }

    #[test]
    fn corr_warns_only_on_incoherent_l1_chips() {
        let li = instance(Shape::CoRR);
        // Chip-independently, CoRR stays coherence-exempt...
        assert!(analyze_litmus(&li).quiet());
        // ...and on coherent-L1 chips the chip-aware form agrees.
        let k20 = Chip::by_short("K20").unwrap();
        assert!(analyze_litmus_on_chip(&li, &k20).quiet());
        // On an incoherent-L1 Tesla the load-load pair joins the delay
        // set, at device level (the fence that refreshes the L1).
        let c2075 = Chip::by_short("C2075").unwrap();
        let a = analyze_litmus_on_chip(&li, &c2075);
        assert!(!a.quiet(), "stale L1 lines break CoRR on C2075");
        assert_eq!(a.max_warning_level(), Some(FenceLevel::Device));
        // Zeroing the staleness rates removes the channel again.
        assert!(analyze_litmus_on_chip(&li, &c2075.clone().sequentially_consistent()).quiet());
    }

    #[test]
    fn corr_fence_is_quiet_even_on_incoherent_l1_chips() {
        let c2075 = Chip::by_short("C2075").unwrap();
        let a = analyze_litmus_on_chip(&instance(Shape::CoRRFence), &c2075);
        assert!(a.quiet(), "{:?}", a.warnings);
        assert!(a.ordered_edges >= 1, "the fence orders the read-read pair");
    }

    #[test]
    fn intra_block_shared_corr_stays_quiet_on_incoherent_l1_chips() {
        // CoRR.shared reads shared memory — no L1 in that path — and an
        // intra-block global pair would share a home SM anyway.
        let c2075 = Chip::by_short("C2075").unwrap();
        let a = analyze_litmus_on_chip(&instance(Shape::CoRRShared), &c2075);
        assert!(a.quiet(), "{:?}", a.warnings);
    }

    #[test]
    fn rendezvous_sync_never_warns() {
        // Every emitted kernel rendezvouses through an atomic counter;
        // those same-address pairs must not produce spurious warnings.
        let li = instance(Shape::Mp);
        let a = analyze_litmus(&li);
        let sync = li.layout.sync_addr();
        let (reps, block_dim, grid_dim) = litmus_reps(li.placement, li.threads);
        let models: Vec<ThreadModel> = reps
            .iter()
            .map(|r| {
                ThreadModel::build(
                    li.program.as_ref(),
                    ThreadCtx {
                        tid: r.tid,
                        bid: r.bid,
                        block_dim,
                        grid_dim,
                    },
                )
            })
            .collect();
        for w in &a.warnings {
            for m in &models {
                for i in [w.from, w.to] {
                    if !m.abs.reachable[i] {
                        continue;
                    }
                    if let Some(addr) = m.abs.addr_at[i].as_ref().and_then(AbsVal::as_singleton) {
                        assert_ne!(addr, sync, "sync access in warning {w}");
                    }
                }
            }
        }
    }

    /// Both warps write then read across the block; a barrier between
    /// the halves orders everything.
    fn cross_warp_kernel(with_barrier: bool) -> wmm_sim::Program {
        let mut b = KernelBuilder::new("xwarp");
        let tid = b.tid();
        let flip = b.const_(32);
        let other = b.bin(wmm_sim::ir::BinOp::Xor, tid, flip);
        let one = b.const_(1);
        b.store_shared(tid, one);
        if with_barrier {
            b.barrier();
        }
        let v = b.load_shared(other);
        b.store_global(tid, v);
        b.finish().unwrap()
    }

    #[test]
    fn barrier_orders_shared_exchange() {
        let mk = |with_barrier| {
            let p = cross_warp_kernel(with_barrier);
            analyze_program(&AnalysisInput {
                program: &p,
                reps: vec![ThreadRep { bid: 0, tid: 0 }, ThreadRep { bid: 0, tid: 32 }],
                block_dim: 64,
                grid_dim: 1,
            })
        };
        let bare = mk(false);
        assert!(!bare.quiet(), "unsynchronised cross-warp exchange warns");
        assert_eq!(bare.max_warning_level(), Some(FenceLevel::Block));
        let fenced = mk(true);
        assert!(fenced.quiet(), "{:?}", fenced.warnings);
        assert!(fenced.ordered_edges >= 1);
    }

    #[test]
    fn inter_block_shared_accesses_do_not_conflict() {
        // The same kernel run across two blocks: shared memory is
        // per-block, so the exchange cannot conflict and stays quiet.
        let p = cross_warp_kernel(false);
        let a = analyze_program(&AnalysisInput {
            program: &p,
            reps: vec![ThreadRep { bid: 0, tid: 0 }, ThreadRep { bid: 1, tid: 0 }],
            block_dim: 32,
            grid_dim: 2,
        });
        let shared_warning = a
            .warnings
            .iter()
            .any(|w| w.from_space == Space::Shared && w.to_space == Space::Shared);
        assert!(!shared_warning, "{:?}", a.warnings);
    }

    #[test]
    fn fence_costs_prefer_block() {
        assert!(fence_cost(FenceLevel::Block) < fence_cost(FenceLevel::Device));
    }
}
