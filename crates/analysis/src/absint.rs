//! Per-thread abstract interpretation of register dataflow.
//!
//! The domain is deliberately small: a register holds either a bounded
//! set of concrete words ([`AbsVal::Vals`]) or ⊤ ([`AbsVal::Top`]).
//! Special registers (`tid`, `bid`, `blockDim`, …) are *concrete* for a
//! given analysis thread, so SPMD role selection (`if me == t`) prunes
//! the CFG and each analysis thread only sees its own role's accesses.
//! Loads and atomic result registers go straight to ⊤: the analyzer
//! never guesses what memory holds.
//!
//! Binary operations are evaluated with [`wmm_sim::exec::eval_bin`] —
//! the simulator's own operational semantics — so the abstraction can
//! only lose precision, never diverge from execution.

use std::collections::BTreeSet;

use wmm_sim::exec::eval_bin;
use wmm_sim::ir::{Inst, Program, SpecialReg};
use wmm_sim::Word;

/// Cap on the size of a concrete value set before widening to ⊤.
pub const CONST_CAP: usize = 16;

/// Abstract value: a bounded set of possible words, or ⊤ (anything).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown: any word.
    Top,
    /// One of finitely many concrete words.
    Vals(BTreeSet<Word>),
}

impl AbsVal {
    /// The abstract value holding exactly `v`.
    pub fn singleton(v: Word) -> Self {
        let mut s = BTreeSet::new();
        s.insert(v);
        AbsVal::Vals(s)
    }

    /// Is this ⊤?
    pub fn is_top(&self) -> bool {
        matches!(self, AbsVal::Top)
    }

    /// The single concrete value, if there is exactly one.
    pub fn as_singleton(&self) -> Option<Word> {
        match self {
            AbsVal::Vals(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }

    /// Least upper bound; widens to ⊤ past [`CONST_CAP`] values.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Top, _) | (_, AbsVal::Top) => AbsVal::Top,
            (AbsVal::Vals(a), AbsVal::Vals(b)) => {
                let u: BTreeSet<Word> = a.union(b).copied().collect();
                if u.len() > CONST_CAP {
                    AbsVal::Top
                } else {
                    AbsVal::Vals(u)
                }
            }
        }
    }

    /// May the two values denote a common word? ⊤ overlaps everything.
    pub fn overlaps(&self, other: &AbsVal) -> bool {
        match (self, other) {
            (AbsVal::Top, _) | (_, AbsVal::Top) => true,
            (AbsVal::Vals(a), AbsVal::Vals(b)) => !a.is_disjoint(b),
        }
    }
}

/// The concrete identity of one analysis thread: its special registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Logical thread id within the block.
    pub tid: Word,
    /// Logical block id.
    pub bid: Word,
    /// Threads per block of the launch.
    pub block_dim: Word,
    /// Blocks of the launch.
    pub grid_dim: Word,
}

impl ThreadCtx {
    fn special(&self, sr: SpecialReg) -> Word {
        match sr {
            SpecialReg::Tid => self.tid,
            SpecialReg::Bid => self.bid,
            SpecialReg::BlockDim => self.block_dim,
            SpecialReg::GridDim => self.grid_dim,
            SpecialReg::Lane => self.tid % 32,
            SpecialReg::GlobalTid => self.tid + self.bid * self.block_dim,
        }
    }
}

/// The result of abstractly executing a [`Program`] as one thread.
#[derive(Debug, Clone)]
pub struct ThreadAbs {
    /// Is instruction `i` reachable for this thread?
    pub reachable: Vec<bool>,
    /// For each reachable memory access: the abstract address.
    pub addr_at: Vec<Option<AbsVal>>,
    /// Feasible CFG successors per reachable instruction (pruned by
    /// constant branch conditions).
    pub succs: Vec<Vec<usize>>,
}

/// Run the worklist fixpoint for one thread. Registers start at zero,
/// matching the simulator.
pub fn analyze_thread(p: &Program, ctx: &ThreadCtx) -> ThreadAbs {
    let n = p.insts.len();
    let nregs = p.num_regs as usize;
    let mut in_state: Vec<Option<Vec<AbsVal>>> = vec![None; n];
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    if n > 0 {
        in_state[0] = Some(vec![AbsVal::singleton(0); nregs]);
        let mut work = vec![0usize];
        while let Some(i) = work.pop() {
            let st = in_state[i].clone().expect("worklist visits reached insts");
            let (out, nexts) = transfer(p, ctx, i, &st);
            for j in nexts {
                succs[i].insert(j);
                if j >= n {
                    continue; // fell off the end: implicit halt
                }
                let changed = match &mut in_state[j] {
                    slot @ None => {
                        *slot = Some(out.clone());
                        true
                    }
                    Some(cur) => join_states(cur, &out),
                };
                if changed {
                    work.push(j);
                }
            }
        }
    }
    let mut addr_at = vec![None; n];
    for (i, inst) in p.insts.iter().enumerate() {
        if let (Some(st), Some(r)) = (&in_state[i], inst.addr_reg()) {
            addr_at[i] = Some(st[r as usize].clone());
        }
    }
    ThreadAbs {
        reachable: in_state.iter().map(Option::is_some).collect(),
        addr_at,
        succs: succs.into_iter().map(|s| s.into_iter().collect()).collect(),
    }
}

/// Join `out` into `cur`; true if `cur` grew.
fn join_states(cur: &mut [AbsVal], out: &[AbsVal]) -> bool {
    let mut changed = false;
    for (c, o) in cur.iter_mut().zip(out) {
        let j = c.join(o);
        if j != *c {
            *c = j;
            changed = true;
        }
    }
    changed
}

fn abs_bin(op: wmm_sim::ir::BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    let (AbsVal::Vals(va), AbsVal::Vals(vb)) = (a, b) else {
        return AbsVal::Top;
    };
    let mut out = BTreeSet::new();
    for &x in va {
        for &y in vb {
            out.insert(eval_bin(op, x, y));
            if out.len() > CONST_CAP {
                return AbsVal::Top;
            }
        }
    }
    AbsVal::Vals(out)
}

/// Which way can a branch go, given the abstract condition?
fn branch_ways(cond: &AbsVal) -> (bool, bool) {
    // (may be zero, may be nonzero)
    match cond {
        AbsVal::Top => (true, true),
        AbsVal::Vals(s) => (s.contains(&0), s.iter().any(|&v| v != 0)),
    }
}

fn transfer(p: &Program, ctx: &ThreadCtx, i: usize, st: &[AbsVal]) -> (Vec<AbsVal>, Vec<usize>) {
    let mut out = st.to_vec();
    let fall = i + 1;
    let nexts = match &p.insts[i] {
        Inst::Const { dst, value } => {
            out[*dst as usize] = AbsVal::singleton(*value);
            vec![fall]
        }
        Inst::Mov { dst, src } => {
            out[*dst as usize] = st[*src as usize].clone();
            vec![fall]
        }
        Inst::Bin { op, dst, a, b } => {
            out[*dst as usize] = abs_bin(*op, &st[*a as usize], &st[*b as usize]);
            vec![fall]
        }
        Inst::Special { dst, sr } => {
            out[*dst as usize] = AbsVal::singleton(ctx.special(*sr));
            vec![fall]
        }
        Inst::Load { dst, .. }
        | Inst::AtomicCas { dst, .. }
        | Inst::AtomicExch { dst, .. }
        | Inst::AtomicAdd { dst, .. } => {
            out[*dst as usize] = AbsVal::Top;
            vec![fall]
        }
        Inst::Store { .. } | Inst::Fence(_) | Inst::Barrier => vec![fall],
        Inst::Jump { target } => vec![*target],
        Inst::BranchZ { cond, target } => {
            let (zero, nonzero) = branch_ways(&st[*cond as usize]);
            let mut v = Vec::new();
            if nonzero {
                v.push(fall);
            }
            if zero {
                v.push(*target);
            }
            v
        }
        Inst::BranchNZ { cond, target } => {
            let (zero, nonzero) = branch_ways(&st[*cond as usize]);
            let mut v = Vec::new();
            if zero {
                v.push(fall);
            }
            if nonzero {
                v.push(*target);
            }
            v
        }
        Inst::Halt => Vec::new(),
    };
    (out, nexts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::ir::{BinOp, Space};
    use wmm_sim::KernelBuilder;

    fn ctx(tid: Word) -> ThreadCtx {
        ThreadCtx {
            tid,
            bid: 0,
            block_dim: 64,
            grid_dim: 1,
        }
    }

    #[test]
    fn constant_addresses_resolve_to_singletons() {
        let mut b = KernelBuilder::new("t");
        let a = b.const_(7);
        let v = b.const_(1);
        b.store_global(a, v);
        let p = b.finish().unwrap();
        let abs = analyze_thread(&p, &ctx(0));
        let store = p.memory_access_indices()[0];
        assert_eq!(abs.addr_at[store].as_ref().unwrap().as_singleton(), Some(7));
    }

    #[test]
    fn tid_derived_addresses_are_concrete_per_thread() {
        let mut b = KernelBuilder::new("t");
        let tid = b.tid();
        let base = b.const_(16);
        let addr = b.add(base, tid);
        let v = b.const_(1);
        b.store_shared(addr, v);
        let p = b.finish().unwrap();
        let store = p.memory_access_indices()[0];
        for t in [0, 5, 63] {
            let abs = analyze_thread(&p, &ctx(t));
            assert_eq!(
                abs.addr_at[store].as_ref().unwrap().as_singleton(),
                Some(16 + t)
            );
        }
    }

    #[test]
    fn constant_branches_prune_the_other_role() {
        // if tid == 0 { store g[0] } else { store g[1] }
        let mut b = KernelBuilder::new("t");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        let v = b.const_(9);
        b.if_else(
            is0,
            |k| {
                let a = k.const_(0);
                k.store_global(a, v);
            },
            |k| {
                let a = k.const_(1);
                k.store_global(a, v);
            },
        );
        let p = b.finish().unwrap();
        let accesses = p.memory_access_indices();
        assert_eq!(accesses.len(), 2);
        let abs0 = analyze_thread(&p, &ctx(0));
        let abs1 = analyze_thread(&p, &ctx(1));
        // Each thread reaches exactly one of the two stores.
        let reached = |abs: &ThreadAbs| {
            accesses
                .iter()
                .filter(|&&i| abs.reachable[i])
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(reached(&abs0).len(), 1);
        assert_eq!(reached(&abs1).len(), 1);
        assert_ne!(reached(&abs0), reached(&abs1));
    }

    #[test]
    fn loop_counters_widen_to_top() {
        // for i in 0..40 { store g[i] } — 40 > CONST_CAP, so the address
        // must widen to ⊤ rather than enumerate.
        let mut b = KernelBuilder::new("t");
        let i = b.reg();
        let start = b.const_(0);
        let end = b.const_(40);
        let v = b.const_(1);
        b.for_range(i, start, end, |k, iv| {
            k.store_in(Space::Global, iv, v);
        });
        let p = b.finish().unwrap();
        let store = p.memory_access_indices()[0];
        let abs = analyze_thread(&p, &ctx(0));
        assert!(abs.addr_at[store].as_ref().unwrap().is_top());
    }

    #[test]
    fn loads_produce_top() {
        let mut b = KernelBuilder::new("t");
        let a = b.const_(0);
        let x = b.load_global(a);
        b.store_global(x, x); // address comes from memory: ⊤
        let p = b.finish().unwrap();
        let store = p.memory_access_indices()[1];
        let abs = analyze_thread(&p, &ctx(0));
        assert!(abs.addr_at[store].as_ref().unwrap().is_top());
    }

    #[test]
    fn small_joins_stay_finite() {
        let a = AbsVal::singleton(1).join(&AbsVal::singleton(2));
        assert_eq!(a, AbsVal::Vals([1, 2].into_iter().collect()));
        assert!(a.overlaps(&AbsVal::singleton(2)));
        assert!(!a.overlaps(&AbsVal::singleton(3)));
        assert!(a.overlaps(&AbsVal::Top));
    }

    #[test]
    fn eval_matches_simulator_for_branch_conditions() {
        let x = AbsVal::singleton(5);
        let y = AbsVal::singleton(5);
        let eq = abs_bin(BinOp::CmpEq, &x, &y);
        assert_eq!(eq.as_singleton(), Some(1));
        let ne = abs_bin(BinOp::CmpNe, &x, &y);
        assert_eq!(ne.as_singleton(), Some(0));
    }
}
