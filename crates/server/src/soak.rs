//! The deterministic soak/throughput harness behind `repro soak`.
//!
//! A [`SoakMix`] is a fixed grid of campaign jobs — all 28 generated
//! shapes × chips × the five suite environments, plus application
//! campaigns — seeded from one `SOAK_SEED`: each job's seed derives
//! from its *grid coordinates* (never its submission index), so the
//! same seed always names the same work no matter how the queue is
//! shuffled or how many workers drain it.
//!
//! [`run_soak`] streams the mix through an [`Engine`], then writes a
//! threshold-gated [`SoakReport`]:
//!
//! * **throughput gate** — sustained jobs/sec over the whole batch;
//! * **cache gate** — artifact-cache hit rate (the quick profile keys
//!   hundreds of jobs to a handful of environments, so anything under
//!   0.9 means the shared cache is broken);
//! * **determinism gate** — a sample of jobs re-executed standalone
//!   (fresh artifacts, no queue, no pool) must reproduce their queued
//!   digests bit for bit.
//!
//! The report's `results_digest` covers only job results (id-ordered
//! over spec × summary digest), never wall-clock fields: two runs under
//! one seed produce identical digests on any machine.

use crate::engine::{Engine, EngineConfig, JobResult};
use crate::job::{EnvKind, JobSpec, WorkloadSpec};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::time::Instant;
use wmm_core::cache::CacheStats;
use wmm_core::campaign::Fnv64;
use wmm_gen::Shape;
use wmm_litmus::runner::mix_seed;
use wmm_obs::{ChannelCounts, LatencyHistogram, Provenance};

/// The three soak intensities, after the exemplar harness shape:
/// `--quick` for CI smoke, `--extended` for nightly runs, `--stress`
/// for the full grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakProfile {
    /// CI smoke: two chips, one distance, small campaigns.
    Quick,
    /// Nightly: three chips, two distances, medium campaigns.
    Extended,
    /// Full grid: four chips, two distances, heavy campaigns.
    Stress,
}

impl SoakProfile {
    /// The profile's flag/report name.
    pub fn name(self) -> &'static str {
        match self {
            SoakProfile::Quick => "quick",
            SoakProfile::Extended => "extended",
            SoakProfile::Stress => "stress",
        }
    }

    /// Default gate thresholds. Throughput floors are calibrated far
    /// below the measured `BENCH_campaign.json` baselines (a quick-mix
    /// job is a 6-execution campaign that sustains hundreds of jobs/sec
    /// on one core), so only a collapse — not a slow CI box — trips
    /// them. The cache floor is the tentpole's contract: five-ish
    /// environments shared across hundreds of jobs.
    pub fn gates(self) -> SoakGates {
        match self {
            SoakProfile::Quick => SoakGates {
                min_jobs_per_sec: 2.0,
                min_cache_hit_rate: 0.9,
                determinism_samples: 7,
            },
            SoakProfile::Extended => SoakGates {
                min_jobs_per_sec: 1.0,
                min_cache_hit_rate: 0.9,
                determinism_samples: 9,
            },
            SoakProfile::Stress => SoakGates {
                min_jobs_per_sec: 0.5,
                min_cache_hit_rate: 0.9,
                determinism_samples: 11,
            },
        }
    }
}

impl fmt::Display for SoakProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for SoakProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "quick" => Ok(SoakProfile::Quick),
            "extended" => Ok(SoakProfile::Extended),
            "stress" => Ok(SoakProfile::Stress),
            other => Err(format!(
                "unknown soak profile {other:?} (expected quick, extended or stress)"
            )),
        }
    }
}

/// Gate thresholds a soak run must clear to exit zero.
#[derive(Debug, Clone, Copy)]
pub struct SoakGates {
    /// Minimum sustained jobs/sec over the whole batch.
    pub min_jobs_per_sec: f64,
    /// Minimum artifact-cache hit rate (exclusive: the report fails at
    /// exactly the floor).
    pub min_cache_hit_rate: f64,
    /// How many jobs to re-execute standalone for the determinism gate.
    pub determinism_samples: usize,
}

/// The job grid a soak run submits. [`SoakMix::for_profile`] builds the
/// standard mixes; tests build small custom ones.
#[derive(Debug, Clone)]
pub struct SoakMix {
    /// Chips the litmus grid spans (short names).
    pub litmus_chips: Vec<String>,
    /// Chips the application campaigns span.
    pub app_chips: Vec<String>,
    /// Environments every grid point runs under.
    pub envs: Vec<EnvKind>,
    /// Litmus shapes (all 28 in the standard mixes — intra- and
    /// inter-block placements both come along).
    pub shapes: Vec<Shape>,
    /// Instantiation distances.
    pub distances: Vec<u32>,
    /// Executions per litmus job.
    pub execs: u32,
    /// Applications (short names).
    pub apps: Vec<String>,
    /// Campaign runs per application job.
    pub app_runs: u32,
}

impl SoakMix {
    /// The standard mix for a profile.
    pub fn for_profile(profile: SoakProfile) -> SoakMix {
        let s = |names: &[&str]| names.iter().map(|n| (*n).to_string()).collect();
        match profile {
            SoakProfile::Quick => SoakMix {
                litmus_chips: s(&["Titan", "C2075"]),
                app_chips: s(&["Titan"]),
                envs: EnvKind::ALL.to_vec(),
                shapes: Shape::ALL.to_vec(),
                distances: vec![64],
                execs: 6,
                apps: s(&["shm-pipe", "cbe-dot"]),
                app_runs: 4,
            },
            SoakProfile::Extended => SoakMix {
                litmus_chips: s(&["Titan", "C2075", "980"]),
                app_chips: s(&["Titan", "K20"]),
                envs: EnvKind::ALL.to_vec(),
                shapes: Shape::ALL.to_vec(),
                distances: vec![64, 256],
                execs: 12,
                apps: s(&["shm-pipe", "cbe-dot"]),
                app_runs: 8,
            },
            SoakProfile::Stress => SoakMix {
                litmus_chips: s(&["Titan", "C2075", "980", "K20"]),
                app_chips: s(&["Titan", "K20"]),
                envs: EnvKind::ALL.to_vec(),
                shapes: Shape::ALL.to_vec(),
                distances: vec![64, 256],
                execs: 24,
                apps: s(&["shm-pipe", "cbe-dot"]),
                app_runs: 12,
            },
        }
    }

    /// Expand the grid into concrete jobs. Each job's seed is
    /// [`mix_seed`]-chained from `base_seed` and the job's grid
    /// coordinates (with a leading litmus/app tag), so the list —
    /// seeds included — is a pure function of `(self, base_seed)`, and
    /// shuffling the submission order cannot change any job's work.
    pub fn jobs(&self, base_seed: u64) -> Vec<JobSpec> {
        let mut out = Vec::new();
        for (si, shape) in self.shapes.iter().enumerate() {
            for (di, &distance) in self.distances.iter().enumerate() {
                for (ci, chip) in self.litmus_chips.iter().enumerate() {
                    for (ki, &env) in self.envs.iter().enumerate() {
                        let seed = [0, si as u64, di as u64, ci as u64, ki as u64]
                            .into_iter()
                            .fold(base_seed, mix_seed);
                        out.push(JobSpec {
                            chip: chip.clone(),
                            env,
                            workload: WorkloadSpec::Litmus {
                                shape: *shape,
                                distance,
                            },
                            execs: self.execs,
                            seed,
                        });
                    }
                }
            }
        }
        for (ai, app) in self.apps.iter().enumerate() {
            for (ci, chip) in self.app_chips.iter().enumerate() {
                for (ki, &env) in self.envs.iter().enumerate() {
                    let seed = [1, ai as u64, ci as u64, ki as u64]
                        .into_iter()
                        .fold(base_seed, mix_seed);
                    out.push(JobSpec {
                        chip: chip.clone(),
                        env,
                        workload: WorkloadSpec::App { name: app.clone() },
                        execs: self.app_runs,
                        seed,
                    });
                }
            }
        }
        out
    }
}

/// One soak run's parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The profile (names the standard mix and default gates).
    pub profile: SoakProfile,
    /// The run's base seed (`SOAK_SEED`).
    pub seed: u64,
    /// Engine worker-pool size.
    pub workers: usize,
    /// Gate thresholds.
    pub gates: SoakGates,
}

impl SoakConfig {
    /// Defaults for a profile: seed 2016, four workers, the profile's
    /// gates.
    pub fn new(profile: SoakProfile) -> SoakConfig {
        SoakConfig {
            profile,
            seed: 2016,
            workers: 4,
            gates: profile.gates(),
        }
    }
}

/// Pass/fail summary of the three gates.
#[derive(Debug, Clone, Copy)]
pub struct GateReport {
    /// The throughput floor applied.
    pub min_jobs_per_sec: f64,
    /// The cache-hit-rate floor applied.
    pub min_cache_hit_rate: f64,
    /// Throughput gate cleared.
    pub throughput_ok: bool,
    /// Cache gate cleared.
    pub cache_ok: bool,
    /// Determinism gate cleared (every sampled job reproduced).
    pub determinism_ok: bool,
    /// All gates cleared.
    pub pass: bool,
}

/// The telemetry block of a [`SoakReport`], split the way the JSON
/// renders it: deterministic channel counters aggregated over every
/// litmus result, and wall-clock span histograms from the engine and
/// the artifact cache.
#[derive(Debug, Clone, Default)]
pub struct SoakMetrics {
    /// Per-channel weakness-event totals over every litmus run in the
    /// batch — deterministic in `(mix, seed)`, like the digest.
    pub channels: ChannelCounts,
    /// Weak-run attribution summed over every litmus job; its total is
    /// the batch's weak-outcome count (deterministic).
    pub provenance: Provenance,
    /// Wall-clock per-job queue wait (machine-dependent).
    pub queue_wait: LatencyHistogram,
    /// Wall-clock per-job execute span (machine-dependent).
    pub execute: LatencyHistogram,
    /// Wall-clock artifact-compile span per cache build
    /// (machine-dependent).
    pub compile: LatencyHistogram,
}

/// Everything a soak run measured. `results_digest` and the
/// determinism fields are deterministic in `(mix, seed)`; the timing
/// fields are the run's actual performance.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Profile name.
    pub profile: String,
    /// The run's base seed.
    pub seed: u64,
    /// Engine worker-pool size.
    pub workers: usize,
    /// Total jobs executed.
    pub jobs: usize,
    /// Of which litmus campaigns.
    pub litmus_jobs: usize,
    /// Of which application campaigns.
    pub app_jobs: usize,
    /// Wall-clock seconds from first submission to drained.
    pub elapsed_sec: f64,
    /// Sustained throughput over the whole batch.
    pub jobs_per_sec: f64,
    /// Median per-job execution latency (ms).
    pub latency_ms_p50: f64,
    /// 90th-percentile latency (ms).
    pub latency_ms_p90: f64,
    /// 99th-percentile latency (ms).
    pub latency_ms_p99: f64,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Artifact-cache counters.
    pub cache: CacheStats,
    /// FNV-1a digest over (spec, summary-digest) pairs in canonical
    /// (spec-sorted) order, as 16 hex digits.
    pub results_digest: String,
    /// Jobs re-executed standalone for the determinism gate.
    pub determinism_checked: usize,
    /// Of which disagreed with their queued result (must be 0).
    pub determinism_mismatches: usize,
    /// Channel counters and span histograms (see [`SoakMetrics`]).
    pub metrics: SoakMetrics,
    /// Gate outcomes.
    pub gates: GateReport,
}

/// Canonical digest over a batch's results: (spec text, summary digest)
/// pairs sorted by spec, folded through [`Fnv64`]. Sorting makes the
/// digest a function of the *set* of results, so shuffled submission
/// orders agree; specs are unique within a [`SoakMix`] grid.
pub fn results_digest(results: &[JobResult]) -> u64 {
    let mut pairs: Vec<(String, u64)> = results
        .iter()
        .map(|r| (r.spec.to_string(), r.summary.digest()))
        .collect();
    pairs.sort();
    let mut f = Fnv64::new();
    for (spec, digest) in &pairs {
        f.write(spec.as_bytes());
        f.write(&[0]);
        f.write_u64(*digest);
    }
    f.finish()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Run the profile's standard mix. See [`run_soak_mix`].
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    run_soak_mix(cfg, &SoakMix::for_profile(cfg.profile))
}

/// Run a soak: submit the whole mix, drain it, re-execute a sample of
/// jobs standalone for the determinism gate, and evaluate thresholds.
/// Gate failures are reported in the returned [`SoakReport`] (callers
/// exit nonzero on `!report.gates.pass`); an `Err` is an execution
/// failure, not a gate failure.
pub fn run_soak_mix(cfg: &SoakConfig, mix: &SoakMix) -> Result<SoakReport, String> {
    let jobs = mix.jobs(cfg.seed);
    let litmus_jobs = jobs
        .iter()
        .filter(|j| matches!(j.workload, WorkloadSpec::Litmus { .. }))
        .count();
    let app_jobs = jobs.len() - litmus_jobs;
    let engine = Engine::start(EngineConfig {
        workers: cfg.workers,
        job_parallelism: 1,
    });
    let started = Instant::now();
    for job in &jobs {
        engine.submit(job.clone())?;
    }
    let results = engine.drain()?;
    let elapsed_sec = started.elapsed().as_secs_f64();
    let cache = engine.cache_stats();
    let max_queue_depth = engine.max_depth();
    let engine_metrics = engine.metrics();
    let compile = engine.compile_times();
    engine.shutdown();

    // Deterministic telemetry: fold every litmus result's channel
    // totals and weak-run attribution (pure counts, so — like the
    // digest — a function of `(mix, seed)` alone).
    let mut channels = ChannelCounts::default();
    let mut provenance = Provenance::default();
    for r in &results {
        if let Some(h) = r.summary.as_litmus() {
            channels.add(h.channels());
            provenance.add(&h.provenance_total());
        }
    }
    let metrics = SoakMetrics {
        channels,
        provenance,
        queue_wait: engine_metrics
            .span("queue_wait")
            .cloned()
            .unwrap_or_default(),
        execute: engine_metrics.span("execute").cloned().unwrap_or_default(),
        compile,
    };

    let mut latencies: Vec<f64> = results.iter().map(|r| r.latency_ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    // Determinism gate: an evenly spaced sample of jobs, re-executed
    // standalone — no queue, no pool, no shared cache — must reproduce
    // the queued digests exactly.
    let samples = cfg.gates.determinism_samples.min(results.len());
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for i in 0..samples {
        let r = &results[i * results.len() / samples.max(1)];
        let standalone = r.spec.execute(1, None)?;
        checked += 1;
        if standalone.digest() != r.summary.digest() {
            mismatches += 1;
        }
    }

    let jobs_per_sec = if elapsed_sec > 0.0 {
        results.len() as f64 / elapsed_sec
    } else {
        f64::INFINITY
    };
    let throughput_ok = jobs_per_sec >= cfg.gates.min_jobs_per_sec;
    let cache_ok = cache.hit_rate() > cfg.gates.min_cache_hit_rate;
    let determinism_ok = checked > 0 && mismatches == 0;
    Ok(SoakReport {
        profile: cfg.profile.name().to_string(),
        seed: cfg.seed,
        workers: cfg.workers,
        jobs: results.len(),
        litmus_jobs,
        app_jobs,
        elapsed_sec,
        jobs_per_sec,
        latency_ms_p50: percentile(&latencies, 50.0),
        latency_ms_p90: percentile(&latencies, 90.0),
        latency_ms_p99: percentile(&latencies, 99.0),
        max_queue_depth,
        cache,
        results_digest: format!("{:016x}", results_digest(&results)),
        determinism_checked: checked,
        determinism_mismatches: mismatches,
        metrics,
        gates: GateReport {
            min_jobs_per_sec: cfg.gates.min_jobs_per_sec,
            min_cache_hit_rate: cfg.gates.min_cache_hit_rate,
            throughput_ok,
            cache_ok,
            determinism_ok,
            pass: throughput_ok && cache_ok && determinism_ok,
        },
    })
}

impl SoakReport {
    /// Render the report. The three gate objects are single lines so CI
    /// can grep them directly.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"litmus_jobs\": {},\n", self.litmus_jobs));
        s.push_str(&format!("  \"app_jobs\": {},\n", self.app_jobs));
        s.push_str(&format!("  \"elapsed_sec\": {:.3},\n", self.elapsed_sec));
        s.push_str(&format!("  \"jobs_per_sec\": {:.1},\n", self.jobs_per_sec));
        s.push_str(&format!(
            "  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}},\n",
            self.latency_ms_p50, self.latency_ms_p90, self.latency_ms_p99
        ));
        s.push_str(&format!(
            "  \"max_queue_depth\": {},\n",
            self.max_queue_depth
        ));
        s.push_str(&format!(
            "  \"cache\": {{\"builds\": {}, \"hits\": {}, \"entries\": {}, \"hit_rate\": {:.4}}},\n",
            self.cache.builds,
            self.cache.hits,
            self.cache.entries,
            self.cache.hit_rate()
        ));
        s.push_str(&format!(
            "  \"results_digest\": \"{}\",\n",
            self.results_digest
        ));
        s.push_str(&format!(
            "  \"throughput_gate\": {{\"min_jobs_per_sec\": {:.1}, \"jobs_per_sec\": {:.1}, \"ok\": {}}},\n",
            self.gates.min_jobs_per_sec, self.jobs_per_sec, self.gates.throughput_ok
        ));
        s.push_str(&format!(
            "  \"cache_gate\": {{\"min_hit_rate\": {:.4}, \"hit_rate\": {:.4}, \"ok\": {}}},\n",
            self.gates.min_cache_hit_rate,
            self.cache.hit_rate(),
            self.gates.cache_ok
        ));
        s.push_str(&format!(
            "  \"determinism_gate\": {{\"checked\": {}, \"mismatches\": {}, \"ok\": {}}},\n",
            self.determinism_checked, self.determinism_mismatches, self.gates.determinism_ok
        ));
        s.push_str(&format!(
            "  \"metrics\": {{\"deterministic\": {{\"channels\": {}, \"provenance\": {}}}, \"wall_clock_us\": {{\"queue_wait\": {}, \"execute\": {}, \"compile\": {}}}}},\n",
            self.metrics.channels.to_json(),
            self.metrics.provenance.to_json(),
            self.metrics.queue_wait.to_json(),
            self.metrics.execute.to_json(),
            self.metrics.compile.to_json()
        ));
        s.push_str(&format!("  \"pass\": {}\n", self.gates.pass));
        s.push_str("}\n");
        s
    }

    /// Write `report.json` under
    /// `<root>/tests/artifacts/soak/<profile>-seed<seed>/` (the
    /// deterministic, seed-named location CI uploads). Returns the file
    /// path.
    pub fn write_report(&self, root: &Path) -> io::Result<PathBuf> {
        let dir = root
            .join("tests")
            .join("artifacts")
            .join("soak")
            .join(format!("{}-seed{}", self.profile, self.seed));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("report.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// The single-line trajectory point `repro soak` appends to
    /// `BENCH_soak.json`.
    pub fn trajectory_point(&self) -> String {
        format!(
            "{{\"source\": \"soak\", \"profile\": \"{}\", \"seed\": {}, \"workers\": {}, \"jobs\": {}, \"jobs_per_sec\": {:.1}, \"latency_ms_p50\": {:.3}, \"cache_hit_rate\": {:.4}, \"results_digest\": \"{}\", \"channels\": {}, \"pass\": {}}}",
            self.profile,
            self.seed,
            self.workers,
            self.jobs,
            self.jobs_per_sec,
            self.latency_ms_p50,
            self.cache.hit_rate(),
            self.results_digest,
            self.metrics.channels.to_json(),
            self.gates.pass
        )
    }
}

/// Append one single-line JSON `point` to a `{"points": [...]}`
/// trajectory file, creating the file if missing — the shared appender
/// behind `BENCH_soak.json` (used by both `repro soak` and
/// `repro bench`).
pub fn append_trajectory_point(path: &Path, point: &str) -> io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => "{\n  \"points\": [\n  ]\n}\n".to_string(),
        Err(e) => return Err(e),
    };
    let close = text.rfind(']').ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: no points array to append to", path.display()),
        )
    })?;
    let head = text[..close].trim_end();
    let sep = if head.ends_with('[') { "" } else { "," };
    let rebuilt = format!("{head}{sep}\n    {point}\n  ]\n}}\n");
    std::fs::write(path, rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature mix that keeps unit tests fast while exercising
    /// both workload kinds and several environments.
    fn tiny_mix() -> SoakMix {
        SoakMix {
            litmus_chips: vec!["Titan".to_string()],
            app_chips: vec!["Titan".to_string()],
            envs: vec![EnvKind::Native, EnvKind::SysStrPlus],
            shapes: vec![Shape::Mp, Shape::Sb, Shape::MpShared],
            distances: vec![64],
            execs: 4,
            apps: vec!["shm-pipe".to_string()],
            app_runs: 2,
        }
    }

    fn tiny_cfg(workers: usize) -> SoakConfig {
        SoakConfig {
            profile: SoakProfile::Quick,
            seed: 42,
            workers,
            gates: SoakGates {
                min_jobs_per_sec: 0.001,
                min_cache_hit_rate: 0.0,
                determinism_samples: 3,
            },
        }
    }

    #[test]
    fn mix_expansion_is_deterministic_and_duplicate_free() {
        let mix = tiny_mix();
        let a = mix.jobs(42);
        let b = mix.jobs(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3 * 2 + 2);
        let mut specs: Vec<String> = a.iter().map(|j| j.to_string()).collect();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), a.len(), "specs must be unique");
        // A different base seed reseeds every job.
        let c = mix.jobs(43);
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn standard_profiles_cover_the_advertised_grid() {
        let quick = SoakMix::for_profile(SoakProfile::Quick);
        assert_eq!(quick.shapes.len(), Shape::ALL.len());
        assert_eq!(quick.envs.len(), 5);
        let jobs = quick.jobs(2016);
        let litmus = Shape::ALL.len() * quick.litmus_chips.len() * 5;
        let apps = quick.apps.len() * quick.app_chips.len() * 5;
        assert_eq!(jobs.len(), litmus + apps);
        for job in &jobs {
            job.validate().unwrap();
        }
    }

    #[test]
    fn soak_digest_is_reproducible_across_runs_and_worker_counts() {
        let mix = tiny_mix();
        let a = run_soak_mix(&tiny_cfg(1), &mix).unwrap();
        let b = run_soak_mix(&tiny_cfg(1), &mix).unwrap();
        let c = run_soak_mix(&tiny_cfg(3), &mix).unwrap();
        assert_eq!(a.results_digest, b.results_digest);
        assert_eq!(a.results_digest, c.results_digest);
        assert!(a.gates.determinism_ok);
        assert_eq!(a.determinism_mismatches, 0);
        assert_eq!(a.jobs, 8);
    }

    #[test]
    fn impossible_throughput_gate_fails_the_report() {
        let mut cfg = tiny_cfg(2);
        cfg.gates.min_jobs_per_sec = 1e12;
        let report = run_soak_mix(&cfg, &tiny_mix()).unwrap();
        assert!(!report.gates.throughput_ok);
        assert!(!report.gates.pass);
        // ...and the failure is visible on the greppable gate line.
        assert!(report.to_json().contains("\"throughput_gate\""));
        assert!(report
            .to_json()
            .lines()
            .any(|l| l.contains("throughput_gate") && l.contains("\"ok\": false")));
    }

    #[test]
    fn report_json_carries_the_gate_lines() {
        let report = run_soak_mix(&tiny_cfg(2), &tiny_mix()).unwrap();
        let json = report.to_json();
        for field in [
            "\"throughput_gate\"",
            "\"cache_gate\"",
            "\"determinism_gate\"",
            "\"results_digest\"",
            "\"metrics\"",
            "\"pass\": true",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        // The metrics entry is a single greppable line separating the
        // deterministic counters from the wall-clock spans.
        let metrics_line = json
            .lines()
            .find(|l| l.contains("\"metrics\""))
            .expect("metrics line");
        assert!(metrics_line.contains("\"deterministic\""));
        assert!(metrics_line.contains("\"channels\""));
        assert!(metrics_line.contains("\"provenance\""));
        assert!(metrics_line.contains("\"wall_clock_us\""));
        assert!(metrics_line.contains("\"queue_wait\""));
    }

    #[test]
    fn soak_channel_counters_are_worker_count_invariant_and_live() {
        let mix = tiny_mix();
        let a = run_soak_mix(&tiny_cfg(1), &mix).unwrap();
        let b = run_soak_mix(&tiny_cfg(3), &mix).unwrap();
        assert_eq!(a.metrics.channels, b.metrics.channels);
        assert_eq!(a.metrics.provenance, b.metrics.provenance);
        // Liveness needs a channel that fires essentially every run —
        // the tiny mix's 4-exec cells are too small for the low-rate
        // window channel. CoRR on the incoherent-L1 Tesla pressures
        // the structural L1 channel on nearly every stressed execution.
        let live_mix = SoakMix {
            litmus_chips: vec!["C2075".to_string()],
            app_chips: vec![],
            envs: vec![EnvKind::L1StrPlus],
            shapes: vec![Shape::CoRR],
            distances: vec![64],
            execs: 24,
            apps: vec![],
            app_runs: 0,
        };
        let live = run_soak_mix(&tiny_cfg(2), &live_mix).unwrap();
        assert!(
            live.metrics.channels.l1_stale > 0,
            "no L1 events: {}",
            live.metrics.channels
        );
        // Wall-clock spans sample every job regardless of worker count.
        assert_eq!(a.metrics.execute.count(), a.jobs as u64);
        assert_eq!(a.metrics.queue_wait.count(), a.jobs as u64);
        assert!(a.metrics.compile.count() > 0);
        // ...and the trajectory point carries the channel counters.
        let point = a.trajectory_point();
        assert!(point.contains("\"channels\": {\"window_global\":"));
        assert!(!point.contains('\n'));
    }

    #[test]
    fn trajectory_appender_grows_the_points_array() {
        let dir = std::env::temp_dir().join(format!("wmm-soak-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_soak.json");
        let _ = std::fs::remove_file(&path);
        append_trajectory_point(&path, "{\"source\": \"soak\", \"n\": 1}").unwrap();
        append_trajectory_point(&path, "{\"source\": \"bench\", \"n\": 2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"source\"").count(), 2);
        assert!(text.trim_start().starts_with("{\n  \"points\": ["));
        assert!(text.contains("{\"source\": \"soak\", \"n\": 1},\n"));
        assert!(text.trim_end().ends_with("]\n}"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn report_writes_to_the_seed_named_directory() {
        let root = std::env::temp_dir().join(format!("wmm-soak-root-{}", std::process::id()));
        let report = run_soak_mix(&tiny_cfg(2), &tiny_mix()).unwrap();
        let path = report.write_report(&root).unwrap();
        assert!(path.ends_with("tests/artifacts/soak/quick-seed42/report.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"results_digest\""));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
