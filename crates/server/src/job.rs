//! Job specifications: one queued campaign request.
//!
//! A [`JobSpec`] is everything the engine needs to run one campaign —
//! chip, environment, workload, execution count and the job's own seed
//! — and nothing more: results are a pure function of the spec, which
//! is what makes queue interleaving, worker count and cache hits
//! invisible (see the crate docs).
//!
//! Specs round-trip through a compact one-line text form for
//! `repro serve --jobs`:
//!
//! ```text
//! litmus <chip> <env> <shape> <distance> <execs> <seed>
//! app    <chip> <env> <name>  <runs>     <seed>
//! ```
//!
//! e.g. `litmus Titan sys-str+ MP 64 32 7` or
//! `app K20 shm+sys-str+ shm-pipe 40 3`; [`parse_jobs`] accepts many
//! jobs separated by newlines or `;`, with `#` comments.

use std::fmt;
use std::str::FromStr;
use wmm_core::cache::{ArtifactCache, ArtifactKey};
use wmm_core::campaign::{CampaignBuilder, CampaignJob, SummaryValue};
use wmm_core::env::{AppHarness, Environment};
use wmm_core::stress::{Scratchpad, StressArtifacts};
use wmm_gen::Shape;
use wmm_litmus::LitmusLayout;
use wmm_sim::chip::Chip;

/// The scratchpad litmus jobs stress — the same layout the one-shot
/// suite runner defaults to
/// ([`SuiteConfig::default`](wmm_core::suite::SuiteConfig)), so a
/// queued suite cell and `run_suite` share artifact-cache entries.
pub fn litmus_pad() -> Scratchpad {
    Scratchpad::new(2048, 6144)
}

/// The five suite environments a job can request — the four columns of
/// the generated-suite evaluation plus the native baseline. A closed
/// enum (rather than a free-form [`Environment`]) keeps job specs
/// textual, hashable and chip-portable: the tuned parameters are
/// resolved per chip at execution time, exactly as the suite columns
/// resolve theirs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// `no-str-`: native execution.
    Native,
    /// `sys-str+`: tuned systematic stress + thread randomisation.
    SysStrPlus,
    /// `rand-str+`: random stress + thread randomisation.
    RandStrPlus,
    /// `shm+sys-str+`: tuned systematic stress + intra-block
    /// shared-space stress.
    ShmSysStrPlus,
    /// `l1-str+`: write-only cross-SM stress (the structural channel).
    L1StrPlus,
}

impl EnvKind {
    /// All five, in the suite's column order.
    pub const ALL: [EnvKind; 5] = [
        EnvKind::Native,
        EnvKind::SysStrPlus,
        EnvKind::RandStrPlus,
        EnvKind::ShmSysStrPlus,
        EnvKind::L1StrPlus,
    ];

    /// The column/environment name (`no-str-`, `sys-str+`, …).
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::Native => "no-str-",
            EnvKind::SysStrPlus => "sys-str+",
            EnvKind::RandStrPlus => "rand-str+",
            EnvKind::ShmSysStrPlus => "shm+sys-str+",
            EnvKind::L1StrPlus => "l1-str+",
        }
    }

    /// Stressing-loop iterations for litmus jobs (0 for native — the
    /// suite columns' calibration).
    pub fn litmus_iters(self) -> u32 {
        match self {
            EnvKind::Native => 0,
            _ => 40,
        }
    }

    /// Resolve to a concrete [`Environment`] on `chip` (the systematic
    /// strategy's parameters are per-chip, Tab. 2).
    pub fn environment(self, chip: &Chip) -> Environment {
        match self {
            EnvKind::Native => Environment::native(),
            EnvKind::SysStrPlus => Environment::sys_str_plus(chip),
            EnvKind::RandStrPlus => Environment {
                stress: wmm_core::stress::StressStrategy::Random,
                randomize: true,
                shared: None,
            },
            EnvKind::ShmSysStrPlus => Environment::shared_sys_str_plus(chip),
            EnvKind::L1StrPlus => Environment::l1_str_plus(),
        }
    }
}

impl fmt::Display for EnvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for EnvKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EnvKind::ALL
            .into_iter()
            .find(|e| e.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = EnvKind::ALL.iter().map(|e| e.name()).collect();
                format!(
                    "unknown environment {s:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

/// What a job runs: a generated litmus test (a suite cell) or an
/// application campaign.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// A generated litmus shape at an instantiation distance.
    Litmus {
        /// The shape (any of [`Shape::ALL`]).
        shape: Shape,
        /// Communication-location distance in words.
        distance: u32,
    },
    /// An application campaign, by Tab. 4 short name (or `shm-pipe`).
    App {
        /// The application's short name.
        name: String,
    },
}

/// One queued campaign request. See the module docs for the text form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Chip short name (e.g. `"Titan"`).
    pub chip: String,
    /// The testing environment.
    pub env: EnvKind,
    /// What to run.
    pub workload: WorkloadSpec,
    /// Executions (the paper's `C`; for apps, campaign runs).
    pub execs: u32,
    /// The job's own base seed — all of its randomness derives from
    /// this, so the result is a pure function of the spec.
    pub seed: u64,
}

impl JobSpec {
    /// Check the spec resolves (chip exists, application exists,
    /// non-zero execution count) without running anything. The engine
    /// validates at submission so workers never meet an unrunnable job.
    pub fn validate(&self) -> Result<(), String> {
        let chip =
            Chip::by_short(&self.chip).ok_or_else(|| format!("unknown chip {:?}", self.chip))?;
        let _ = chip;
        if self.execs == 0 {
            return Err(format!("{self}: execution count must be positive"));
        }
        match &self.workload {
            WorkloadSpec::Litmus { distance, .. } => {
                if *distance == 0 {
                    return Err(format!("{self}: distance must be positive"));
                }
            }
            WorkloadSpec::App { name } => {
                if wmm_apps::app_by_name(name).is_none() {
                    return Err(format!("unknown application {name:?}"));
                }
            }
        }
        Ok(())
    }

    /// Execute the campaign this spec describes and summarise it.
    ///
    /// With a cache, the environment's stress artifacts are shared with
    /// every other job keying to the same [`ArtifactKey`]; without one,
    /// they are built fresh. Both routes go through
    /// [`ArtifactKey::build`], and every per-run value is drawn from the
    /// run's own seeded RNG, so the result is identical either way —
    /// the equivalence the server's determinism guarantee rests on.
    pub fn execute(
        &self,
        parallelism: usize,
        cache: Option<&ArtifactCache>,
    ) -> Result<SummaryValue, String> {
        let chip =
            Chip::by_short(&self.chip).ok_or_else(|| format!("unknown chip {:?}", self.chip))?;
        let env = self.env.environment(&chip);
        match &self.workload {
            WorkloadSpec::Litmus { shape, distance } => {
                let pad = litmus_pad();
                let inst = shape.instance(LitmusLayout::standard(*distance, pad.required_words()));
                let artifacts = resolve_artifacts(cache, &chip, &env, pad, self.env.litmus_iters());
                let campaign = CampaignBuilder::new(&chip)
                    .stress(artifacts)
                    .randomize_ids(env.randomize)
                    .count(self.execs)
                    .base_seed(self.seed)
                    .parallelism(parallelism)
                    .build();
                Ok(inst.run_on(&campaign))
            }
            WorkloadSpec::App { name } => {
                let app = wmm_apps::app_by_name(name)
                    .ok_or_else(|| format!("unknown application {name:?}"))?;
                let harness = AppHarness::new(&chip, app.as_ref());
                let artifacts = resolve_artifacts(
                    cache,
                    &chip,
                    &env,
                    harness.scratchpad(),
                    harness.calibrated_iters(),
                );
                let campaign = CampaignBuilder::new(&chip)
                    .stress(artifacts)
                    .randomize_ids(env.randomize)
                    .count(self.execs)
                    .base_seed(self.seed)
                    .parallelism(parallelism)
                    .build();
                Ok(harness.run_on(&campaign))
            }
        }
    }
}

/// Cache-or-build: both arms produce [`ArtifactKey::build`]'s value.
fn resolve_artifacts(
    cache: Option<&ArtifactCache>,
    chip: &Chip,
    env: &Environment,
    pad: Scratchpad,
    iters: u32,
) -> StressArtifacts {
    match cache {
        Some(c) => (*c.get(chip, env, pad, iters)).clone(),
        None => ArtifactKey {
            chip: chip.clone(),
            env: env.clone(),
            pad,
            iters,
        }
        .build(),
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.workload {
            WorkloadSpec::Litmus { shape, distance } => write!(
                f,
                "litmus {} {} {} {} {} {}",
                self.chip, self.env, shape, distance, self.execs, self.seed
            ),
            WorkloadSpec::App { name } => write!(
                f,
                "app {} {} {} {} {}",
                self.chip, self.env, name, self.execs, self.seed
            ),
        }
    }
}

impl FromStr for JobSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields: Vec<&str> = s.split_whitespace().collect();
        let usage = "expected `litmus <chip> <env> <shape> <distance> <execs> <seed>` \
                     or `app <chip> <env> <name> <runs> <seed>`";
        let num = |field: &str, what: &str| -> Result<u64, String> {
            field
                .parse::<u64>()
                .map_err(|_| format!("bad {what} {field:?} in job {s:?}"))
        };
        let spec = match fields.as_slice() {
            ["litmus", chip, env, shape, distance, execs, seed] => JobSpec {
                chip: (*chip).to_string(),
                env: env.parse()?,
                workload: WorkloadSpec::Litmus {
                    shape: shape.parse()?,
                    distance: num(distance, "distance")? as u32,
                },
                execs: num(execs, "execution count")? as u32,
                seed: num(seed, "seed")?,
            },
            ["app", chip, env, name, runs, seed] => JobSpec {
                chip: (*chip).to_string(),
                env: env.parse()?,
                workload: WorkloadSpec::App {
                    name: (*name).to_string(),
                },
                execs: num(runs, "run count")? as u32,
                seed: num(seed, "seed")?,
            },
            _ => return Err(format!("cannot parse job {s:?}: {usage}")),
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Parse a job list: one [`JobSpec`] per line or `;`-separated entry;
/// blank entries and `#` comment lines are skipped.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut out = Vec::new();
    for entry in text.split(['\n', ';']) {
        let entry = entry.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        out.push(entry.parse()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_text() {
        let jobs = [
            JobSpec {
                chip: "Titan".into(),
                env: EnvKind::SysStrPlus,
                workload: WorkloadSpec::Litmus {
                    shape: Shape::Mp,
                    distance: 64,
                },
                execs: 32,
                seed: 7,
            },
            JobSpec {
                chip: "K20".into(),
                env: EnvKind::ShmSysStrPlus,
                workload: WorkloadSpec::App {
                    name: "shm-pipe".into(),
                },
                execs: 40,
                seed: 3,
            },
        ];
        for job in jobs {
            let text = job.to_string();
            let back: JobSpec = text.parse().unwrap();
            assert_eq!(job, back, "{text}");
        }
    }

    #[test]
    fn parse_jobs_handles_separators_and_comments() {
        let text = "\
            # suite cells\n\
            litmus Titan sys-str+ MP 64 8 1; litmus Titan no-str- SB 64 8 2\n\
            \n\
            app Titan rand-str+ shm-pipe 4 3\n";
        let jobs = parse_jobs(text).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].env, EnvKind::SysStrPlus);
        assert_eq!(jobs[1].env, EnvKind::Native);
        assert!(matches!(&jobs[2].workload, WorkloadSpec::App { name } if name == "shm-pipe"));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "litmus NoSuchChip sys-str+ MP 64 8 1",
            "litmus Titan mystery-str MP 64 8 1",
            "litmus Titan sys-str+ NOTASHAPE 64 8 1",
            "litmus Titan sys-str+ MP 64 0 1",
            "app Titan sys-str+ no-such-app 4 1",
            "serve Titan sys-str+ MP 64 8 1",
            "litmus Titan sys-str+ MP sixty-four 8 1",
        ] {
            assert!(bad.parse::<JobSpec>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn env_kinds_match_suite_column_names() {
        let names: Vec<&str> = EnvKind::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "no-str-",
                "sys-str+",
                "rand-str+",
                "shm+sys-str+",
                "l1-str+"
            ]
        );
        for kind in EnvKind::ALL {
            assert_eq!(kind.name().parse::<EnvKind>().unwrap(), kind);
        }
    }

    #[test]
    fn env_kind_resolves_to_the_matching_environment() {
        let chip = Chip::by_short("Titan").unwrap();
        for kind in EnvKind::ALL {
            assert_eq!(kind.environment(&chip).name(), kind.name());
        }
    }

    #[test]
    fn cached_and_uncached_execution_agree() {
        let spec = JobSpec {
            chip: "K20".into(),
            env: EnvKind::SysStrPlus,
            workload: WorkloadSpec::Litmus {
                shape: Shape::Mp,
                distance: 64,
            },
            execs: 24,
            seed: 11,
        };
        let cache = ArtifactCache::new();
        let cached = spec.execute(1, Some(&cache)).unwrap();
        let fresh = spec.execute(1, None).unwrap();
        assert_eq!(cached, fresh);
        assert!(cached.as_litmus().unwrap().total() == 24);
    }
}
