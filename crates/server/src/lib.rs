//! # wmm-server — campaign-as-a-service
//!
//! The paper's methodology is a throughput game: weak behaviours only
//! surface at large execution counts, so the rate at which the system
//! grinds campaigns *is* its scientific power. Every other entry point
//! in the workspace is a one-shot CLI — build the world, run, exit.
//! This crate is the long-running form:
//!
//! * [`job`] — [`JobSpec`]: one queued campaign request (a litmus/suite
//!   cell or an application campaign) on a chip under one of the five
//!   suite environments, carrying its own seed; parse/display a compact
//!   text form for `repro serve --jobs`.
//! * [`engine`] — [`Engine`]: a fixed pool of deterministic workers
//!   draining a job queue, with stress artifacts shared across jobs
//!   through a concurrent [`ArtifactCache`](wmm_core::cache::ArtifactCache)
//!   keyed structurally on chip × environment — a thousand jobs against
//!   five environments compile stress kernels five times, not a
//!   thousand.
//! * [`soak`] — the deterministic soak/throughput harness behind
//!   `repro soak`: a seeded (`SOAK_SEED`) generator streams a fixed job
//!   mix (all 28 shapes × chips × the five suite strategies, plus
//!   applications), reports sustained jobs/sec, latency percentiles,
//!   queue depth and cache hit rate, and gates the run on throughput,
//!   cache effectiveness and determinism.
//!
//! # Determinism
//!
//! A job's result depends only on its [`JobSpec`] — never on queue
//! interleaving, worker count, or whether its artifacts were a cache
//! hit ([`StressArtifacts::make`](wmm_core::stress::StressArtifacts::make)
//! draws all per-run values from the run's own seeded RNG). Every
//! histogram coming off the queue is bit-identical to running the same
//! campaign standalone; `tests/server_equivalence.rs` pins this across
//! worker counts {1, 2, 8} and shuffled submission orders.

pub mod engine;
pub mod job;
pub mod soak;

pub use engine::{Engine, EngineConfig, JobResult};
pub use job::{parse_jobs, EnvKind, JobSpec, WorkloadSpec};
pub use soak::{
    run_soak, run_soak_mix, GateReport, SoakConfig, SoakGates, SoakMetrics, SoakMix, SoakProfile,
    SoakReport,
};
