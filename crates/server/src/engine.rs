//! The campaign engine: a job queue drained by a fixed worker pool.
//!
//! Submitted [`JobSpec`]s queue FIFO; each of the pool's workers pops
//! the next job, executes its full campaign (inner parallelism is per
//! job, [`EngineConfig::job_parallelism`]), and records a [`JobResult`]
//! under the job's submission id. Stress artifacts are shared across
//! jobs through one [`ArtifactCache`] owned by the engine — the point
//! of batching: a thousand jobs against five environments compile
//! stress kernels five times.
//!
//! Determinism: a result depends only on its spec (see [`job`](crate::job)),
//! so neither the number of workers nor which worker happens to claim a
//! job can change any histogram; [`Engine::drain`] orders results by
//! submission id, making the whole batch reproducible.

use crate::job::JobSpec;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use wmm_core::cache::{ArtifactCache, CacheStats};
use wmm_core::campaign::SummaryValue;
use wmm_obs::{LatencyHistogram, MetricsRegistry};

/// Engine sizing.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads draining the queue (clamped to at least 1).
    pub workers: usize,
    /// Inner campaign parallelism per job (0 ⇒ all cores). The soak
    /// harness keeps this at 1 — throughput comes from job-level
    /// concurrency, and one simulator per worker keeps the measurement
    /// honest.
    pub job_parallelism: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            job_parallelism: 1,
        }
    }
}

/// One completed job: the spec it ran, its summary, and how long it
/// spent executing (queue wait excluded).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Submission id (dense, starting at 0).
    pub id: u64,
    /// The spec that produced this result.
    pub spec: JobSpec,
    /// The campaign summary (histogram or app verdict counts).
    pub summary: SummaryValue,
    /// Wall-clock execution latency in milliseconds. The one
    /// non-deterministic field — excluded from every digest.
    pub latency_ms: f64,
}

struct State {
    queue: VecDeque<(u64, JobSpec, Instant)>,
    results: Vec<JobResult>,
    errors: Vec<(u64, String)>,
    next_id: u64,
    in_flight: usize,
    max_depth: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: work available, or shutdown.
    work: Condvar,
    /// Signals drainers: a job finished.
    done: Condvar,
    cache: ArtifactCache,
    job_parallelism: usize,
    /// Wall-clock telemetry: `queue_wait` / `execute` span histograms
    /// and the `jobs` counter. Observation only — results and digests
    /// never read this.
    metrics: Mutex<MetricsRegistry>,
}

/// The long-running campaign engine. Start it, submit jobs, [`drain`]
/// for the batch's results. Dropping the engine (or calling
/// [`shutdown`]) stops the workers without waiting for the queue to
/// empty — drain first if results matter.
///
/// [`drain`]: Engine::drain
/// [`shutdown`]: Engine::shutdown
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawn the worker pool.
    pub fn start(config: EngineConfig) -> Engine {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                results: Vec::new(),
                errors: Vec::new(),
                next_id: 0,
                in_flight: 0,
                max_depth: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cache: ArtifactCache::new(),
            job_parallelism: config.job_parallelism,
            metrics: Mutex::new(MetricsRegistry::new()),
        });
        let handles = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Engine { shared, handles }
    }

    /// Validate and enqueue a job; returns its submission id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        spec.validate()?;
        let mut st = self.shared.state.lock().expect("engine state poisoned");
        if st.shutdown {
            return Err("engine is shut down".to_string());
        }
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back((id, spec, Instant::now()));
        st.max_depth = st.max_depth.max(st.queue.len());
        drop(st);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Block until the queue is empty and no job is in flight, then
    /// take every accumulated result, ordered by submission id. Errors
    /// from job execution (none are expected — specs are validated at
    /// submission) fail the whole drain.
    pub fn drain(&self) -> Result<Vec<JobResult>, String> {
        let mut st = self.shared.state.lock().expect("engine state poisoned");
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.shared.done.wait(st).expect("engine state poisoned");
        }
        let mut results = std::mem::take(&mut st.results);
        let errors = std::mem::take(&mut st.errors);
        drop(st);
        if let Some((id, e)) = errors.first() {
            return Err(format!(
                "{} job(s) failed; first: job {id}: {e}",
                errors.len()
            ));
        }
        results.sort_by_key(|r| r.id);
        Ok(results)
    }

    /// The shared artifact cache's counters (the soak report's
    /// `cache_hit_rate` source).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Snapshot of the engine's wall-clock telemetry: `queue_wait` and
    /// `execute` span histograms (microseconds) plus the `jobs`
    /// counter. Values are machine-dependent; only the counter is
    /// deterministic.
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared
            .metrics
            .lock()
            .expect("engine metrics poisoned")
            .clone()
    }

    /// Snapshot of the shared cache's wall-clock artifact-compile
    /// latency histogram.
    pub fn compile_times(&self) -> LatencyHistogram {
        self.shared.cache.compile_times()
    }

    /// High-water mark of the queue depth since start.
    pub fn max_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .max_depth
    }

    /// Stop the workers and join them. Queued-but-unstarted jobs are
    /// abandoned; drain first if their results matter.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("engine state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("engine state poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st).expect("engine state poisoned");
            }
        };
        let Some((id, spec, submitted)) = job else {
            return;
        };
        let queue_wait = submitted.elapsed();
        let started = Instant::now();
        let outcome = spec.execute(shared.job_parallelism, Some(&shared.cache));
        let executed = started.elapsed();
        let latency_ms = executed.as_secs_f64() * 1e3;
        {
            let mut m = shared.metrics.lock().expect("engine metrics poisoned");
            m.record_span("queue_wait", queue_wait);
            m.record_span("execute", executed);
            m.incr("jobs", 1);
        }
        let mut st = shared.state.lock().expect("engine state poisoned");
        match outcome {
            Ok(summary) => st.results.push(JobResult {
                id,
                spec,
                summary,
                latency_ms,
            }),
            Err(e) => st.errors.push((id, e)),
        }
        st.in_flight -= 1;
        drop(st);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EnvKind, WorkloadSpec};
    use wmm_gen::Shape;

    fn litmus_job(shape: Shape, env: EnvKind, seed: u64) -> JobSpec {
        JobSpec {
            chip: "Titan".into(),
            env,
            workload: WorkloadSpec::Litmus {
                shape,
                distance: 64,
            },
            execs: 8,
            seed,
        }
    }

    #[test]
    fn drained_results_come_back_in_submission_order() {
        let engine = Engine::start(EngineConfig {
            workers: 3,
            job_parallelism: 1,
        });
        let specs: Vec<JobSpec> = [Shape::Mp, Shape::Sb, Shape::Lb, Shape::CoWW, Shape::Iriw]
            .into_iter()
            .enumerate()
            .map(|(i, s)| litmus_job(s, EnvKind::SysStrPlus, i as u64))
            .collect();
        for s in &specs {
            engine.submit(s.clone()).unwrap();
        }
        let results = engine.drain().unwrap();
        assert_eq!(results.len(), specs.len());
        for (i, (r, s)) in results.iter().zip(&specs).enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(&r.spec, s);
            assert_eq!(r.summary.as_litmus().unwrap().total(), 8);
        }
    }

    #[test]
    fn one_batch_one_build_per_environment() {
        let engine = Engine::start(EngineConfig {
            workers: 4,
            job_parallelism: 1,
        });
        for seed in 0..12 {
            engine
                .submit(litmus_job(Shape::Mp, EnvKind::SysStrPlus, seed))
                .unwrap();
            engine
                .submit(litmus_job(Shape::Sb, EnvKind::RandStrPlus, seed))
                .unwrap();
        }
        engine.drain().unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.builds, 2, "one build per distinct environment");
        assert_eq!(stats.hits, 22);
        assert!(engine.max_depth() >= 1);
        // Telemetry: one queue-wait and one execute sample per job, one
        // compile sample per build.
        let m = engine.metrics();
        assert_eq!(m.counter("jobs"), 24);
        assert_eq!(m.span("queue_wait").unwrap().count(), 24);
        assert_eq!(m.span("execute").unwrap().count(), 24);
        assert_eq!(engine.compile_times().count(), 2);
    }

    #[test]
    fn invalid_jobs_are_rejected_at_submission() {
        let engine = Engine::start(EngineConfig::default());
        let mut bad = litmus_job(Shape::Mp, EnvKind::Native, 0);
        bad.chip = "NoSuchChip".into();
        assert!(engine.submit(bad).is_err());
        assert_eq!(engine.drain().unwrap().len(), 0);
    }

    #[test]
    fn drain_can_be_repeated_across_batches() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            job_parallelism: 1,
        });
        engine
            .submit(litmus_job(Shape::Mp, EnvKind::Native, 1))
            .unwrap();
        let first = engine.drain().unwrap();
        assert_eq!(first.len(), 1);
        engine
            .submit(litmus_job(Shape::Sb, EnvKind::Native, 2))
            .unwrap();
        let second = engine.drain().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].id, 1, "ids keep counting across batches");
    }
}
