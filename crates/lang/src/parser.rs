//! Recursive-descent parser for the kernel language.

use crate::ast::{Expr, Kernel, Stmt};
use crate::lexer::{Token, TokenKind};
use crate::{Error, Pos};

struct Parser<'a> {
    tokens: &'a [Token],
    at: usize,
}

/// Parse a token stream into a [`Kernel`].
///
/// # Errors
///
/// Returns the first syntax [`Error`].
pub fn parse(tokens: &[Token]) -> Result<Kernel, Error> {
    let mut p = Parser { tokens, at: 0 };
    p.expect_ident("kernel")?;
    let name = p.take_ident()?;
    p.expect_punct("{")?;
    let body = p.block_rest()?;
    p.expect_kind(&TokenKind::Eof)?;
    Ok(Kernel { name, body })
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), Error> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek().kind))
        }
    }

    fn expect_kind(&mut self, k: &TokenKind) -> Result<(), Error> {
        if &self.peek().kind == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {k:?}, found {:?}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self, name: &str) -> Result<(), Error> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == name => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{name}`, found {other:?}")),
        }
    }

    fn take_ident(&mut self) -> Result<String, Error> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Statements until the closing `}` (consumed).
    fn block_rest(&mut self) -> Result<Vec<Stmt>, Error> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return self.err("unexpected end of input; missing `}`");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Error> {
        self.expect_punct("{")?;
        self.block_rest()
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Ident(word) => match word.as_str() {
                "var" => {
                    self.bump();
                    let name = self.take_ident()?;
                    self.expect_punct("=")?;
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Var(name, e, pos))
                }
                "if" => {
                    self.bump();
                    let cond = self.expr()?;
                    let then = self.block()?;
                    let els = if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "else") {
                        self.bump();
                        self.block()?
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::If(cond, then, els))
                }
                "while" => {
                    self.bump();
                    let cond = self.expr()?;
                    let body = self.block()?;
                    Ok(Stmt::While(cond, body))
                }
                "fence" => {
                    self.bump();
                    self.expect_punct("(")?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Fence)
                }
                "fence_block" => {
                    self.bump();
                    self.expect_punct("(")?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::FenceBlock)
                }
                "barrier" => {
                    self.bump();
                    self.expect_punct("(")?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Barrier)
                }
                "global" | "shared" => {
                    self.bump();
                    self.expect_punct("[")?;
                    let addr = self.expr()?;
                    self.expect_punct("]")?;
                    self.expect_punct("=")?;
                    let value = self.expr()?;
                    self.expect_punct(";")?;
                    if word == "global" {
                        Ok(Stmt::GlobalStore(addr, value))
                    } else {
                        Ok(Stmt::SharedStore(addr, value))
                    }
                }
                "cas" | "exch" | "atomic_add" | "shared_cas" | "shared_exch" | "shared_add" => {
                    // Effect-only atomic call statement.
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Expr(e))
                }
                _ => {
                    // Assignment to an existing variable.
                    self.bump();
                    self.expect_punct("=")?;
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Assign(word, e, pos))
                }
            },
            other => self.err(format!("expected a statement, found {other:?}")),
        }
    }

    // expr := cmp (("=="|"!="|"<"|"<="|">"|">=") cmp)?
    fn expr(&mut self) -> Result<Expr, Error> {
        let lhs = self.additive()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if self.eat_punct(op) {
                let rhs = self.additive()?;
                return Ok(Expr::Bin(op_static(op), Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.multiplicative()?;
        loop {
            let mut matched = false;
            for op in ["+", "-", "&", "|", "^", "<<", ">>"] {
                if self.eat_punct(op) {
                    let rhs = self.multiplicative()?;
                    lhs = Expr::Bin(op_static(op), Box::new(lhs), Box::new(rhs));
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.atom()?;
        loop {
            let mut matched = false;
            for op in ["*", "/", "%"] {
                if self.eat_punct(op) {
                    let rhs = self.atom()?;
                    lhs = Expr::Bin(op_static(op), Box::new(lhs), Box::new(rhs));
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Ok(lhs);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, Error> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                self.bump();
                match word.as_str() {
                    "global" | "shared" => {
                        self.expect_punct("[")?;
                        let addr = self.expr()?;
                        self.expect_punct("]")?;
                        if word == "global" {
                            Ok(Expr::GlobalLoad(Box::new(addr)))
                        } else {
                            Ok(Expr::SharedLoad(Box::new(addr)))
                        }
                    }
                    "tid" | "bid" | "blockdim" | "griddim" | "gtid" => {
                        self.expect_punct("(")?;
                        self.expect_punct(")")?;
                        Ok(Expr::Intrinsic(intrinsic_static(&word)))
                    }
                    "cas" | "shared_cas" => {
                        let space = space_of(&word);
                        self.expect_punct("(")?;
                        let a = self.expr()?;
                        self.expect_punct(",")?;
                        let b = self.expr()?;
                        self.expect_punct(",")?;
                        let c = self.expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::Cas(space, Box::new(a), Box::new(b), Box::new(c)))
                    }
                    "exch" | "shared_exch" => {
                        let space = space_of(&word);
                        self.expect_punct("(")?;
                        let a = self.expr()?;
                        self.expect_punct(",")?;
                        let b = self.expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::Exch(space, Box::new(a), Box::new(b)))
                    }
                    "atomic_add" | "shared_add" => {
                        let space = space_of(&word);
                        self.expect_punct("(")?;
                        let a = self.expr()?;
                        self.expect_punct(",")?;
                        let b = self.expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::AtomicAdd(space, Box::new(a), Box::new(b)))
                    }
                    _ => Ok(Expr::Var(word, pos)),
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

/// The memory space an atomic keyword targets (`shared_*` → shared).
fn space_of(keyword: &str) -> wmm_sim::ir::Space {
    if keyword.starts_with("shared_") {
        wmm_sim::ir::Space::Shared
    } else {
        wmm_sim::ir::Space::Global
    }
}

fn op_static(op: &str) -> &'static str {
    for s in [
        "==", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
    ] {
        if s == op {
            return s;
        }
    }
    unreachable!("unknown operator {op}")
}

fn intrinsic_static(name: &str) -> &'static str {
    for s in ["tid", "bid", "blockdim", "griddim", "gtid"] {
        if s == name {
            return s;
        }
    }
    unreachable!("unknown intrinsic {name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Kernel, Error> {
        parse(&lex(src)?)
    }

    #[test]
    fn parses_minimal_kernel() {
        let k = parse_src("kernel k { }").unwrap();
        assert_eq!(k.name, "k");
        assert!(k.body.is_empty());
    }

    #[test]
    fn parses_statements() {
        let k = parse_src(
            "kernel k { var x = 1 + 2 * 3; global[x] = tid(); if x < 4 { x = 5; } else { barrier(); } while x != 0 { x = x - 1; } }",
        )
        .unwrap();
        assert_eq!(k.body.len(), 4);
        assert!(matches!(&k.body[0], Stmt::Var(n, _, _) if n == "x"));
        assert!(matches!(&k.body[2], Stmt::If(_, t, e) if t.len() == 1 && e.len() == 1));
    }

    #[test]
    fn precedence_mul_over_add() {
        let k = parse_src("kernel k { var x = 1 + 2 * 3; }").unwrap();
        let Stmt::Var(_, Expr::Bin("+", _, rhs), _) = &k.body[0] else {
            panic!("expected +: {:?}", k.body[0]);
        };
        assert!(matches!(**rhs, Expr::Bin("*", _, _)));
    }

    #[test]
    fn atomics_parse_as_expressions_and_statements() {
        use wmm_sim::ir::Space;
        let k =
            parse_src("kernel k { var o = cas(0, 0, 1); exch(0, 0); atomic_add(4, 1); }").unwrap();
        assert_eq!(k.body.len(), 3);
        assert!(matches!(
            &k.body[1],
            Stmt::Expr(Expr::Exch(Space::Global, _, _))
        ));
    }

    #[test]
    fn shared_atomics_parse_with_the_shared_space() {
        use wmm_sim::ir::Space;
        let k = parse_src(
            "kernel k { var o = shared_cas(0, 0, 1); shared_exch(0, 0); shared_add(4, 1); }",
        )
        .unwrap();
        assert_eq!(k.body.len(), 3);
        assert!(matches!(
            &k.body[0],
            Stmt::Var(_, Expr::Cas(Space::Shared, _, _, _), _)
        ));
        assert!(matches!(
            &k.body[1],
            Stmt::Expr(Expr::Exch(Space::Shared, _, _))
        ));
        assert!(matches!(
            &k.body[2],
            Stmt::Expr(Expr::AtomicAdd(Space::Shared, _, _))
        ));
    }

    #[test]
    fn missing_brace_reported() {
        let err = parse_src("kernel k { var x = 1;").unwrap_err();
        assert!(err.message.contains('}'));
    }

    #[test]
    fn missing_semicolon_reported() {
        assert!(parse_src("kernel k { var x = 1 }").is_err());
    }
}
