//! # wmm-lang — a small C-like kernel language for the simulated GPU
//!
//! A front-end over the `wmm-sim` IR so kernels (litmus tests, new case
//! studies) can be written as text instead of builder calls:
//!
//! ```
//! use wmm_lang::compile;
//!
//! let program = compile(
//!     r#"
//!     kernel handoff {
//!         if tid() == 0 {
//!             if bid() == 0 {
//!                 global[0] = 42;      // payload
//!                 fence();
//!                 global[128] = 1;     // flag
//!             } else {
//!                 while global[128] == 0 { }
//!                 global[256] = global[0];
//!             }
//!         }
//!     }
//!     "#,
//! )
//! .expect("valid kernel");
//! assert!(program.len() > 10);
//! ```
//!
//! The language has `var` bindings, assignments, global/shared array
//! accesses, the three atomics (`cas`, `exch`, `atomic_add`) plus their
//! shared-memory forms (`shared_cas`, `shared_exch`, `shared_add`),
//! `fence()` / `fence_block()` / `barrier()`, `if`/`else`, `while`, and
//! the thread-geometry intrinsics `tid()`, `bid()`, `blockdim()`,
//! `griddim()`, `gtid()`. All values are 32-bit words; arithmetic is
//! unsigned and wrapping, exactly as in the IR.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Expr, Kernel, Stmt};
pub use lexer::{lex, Token, TokenKind};
pub use lower::lower;
pub use parser::parse;

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Where the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for Error {}

/// Compile kernel source to an IR [`Program`](wmm_sim::Program).
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic [`Error`] found.
pub fn compile(source: &str) -> Result<wmm_sim::Program, Error> {
    let tokens = lex(source)?;
    let kernel = parse(&tokens)?;
    lower(&kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::chip::Chip;
    use wmm_sim::exec::{Gpu, LaunchSpec};

    fn sc_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    #[test]
    fn compile_and_run_counter() {
        let p = compile(
            r#"
            kernel count {
                var old = atomic_add(0, 1);
                global[64 + gtid()] = old;
            }
            "#,
        )
        .unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let r = gpu.run(&LaunchSpec::app(p, 2, 32, 256), 3);
        assert!(r.status.is_completed());
        assert_eq!(r.word(0), 64);
    }

    #[test]
    fn compile_loop_sum() {
        let p = compile(
            r#"
            kernel sum {
                if tid() == 0 {
                    var acc = 0;
                    var i = 0;
                    while i < 10 {
                        acc = acc + i;
                        i = i + 1;
                    }
                    global[5] = acc;
                }
            }
            "#,
        )
        .unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let r = gpu.run(&LaunchSpec::app(p, 1, 32, 16), 1);
        assert_eq!(r.word(5), 45);
    }

    #[test]
    fn compile_spinlock_idiom() {
        // The Fig. 1 lock/unlock idiom, in the language.
        let p = compile(
            r#"
            kernel mutex {
                if tid() == 0 {
                    while cas(0, 0, 1) != 0 { }
                    global[128] = global[128] + 1;
                    exch(0, 0);
                }
            }
            "#,
        )
        .unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let r = gpu.run(&LaunchSpec::app(p, 6, 32, 256), 5);
        assert!(r.status.is_completed());
        assert_eq!(r.word(128), 6);
    }

    #[test]
    fn shared_memory_and_barrier() {
        let p = compile(
            r#"
            kernel bcast {
                if tid() == 0 {
                    shared[3] = 99;
                }
                barrier();
                if tid() == 1 {
                    global[0] = shared[3];
                }
            }
            "#,
        )
        .unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 1, 32, 8);
        spec.shared_words = 8;
        let r = gpu.run(&spec, 9);
        assert_eq!(r.word(0), 99);
    }

    #[test]
    fn shared_atomics_compile_and_run() {
        // 32 threads bump a shared counter atomically; lane 0 publishes.
        let p = compile(
            r#"
            kernel scount {
                shared_add(0, 1);
                barrier();
                if tid() == 0 {
                    global[0] = shared[0];
                    var old = shared_exch(1, 7);
                    global[1] = old;
                    global[2] = shared_cas(1, 7, 9);
                }
            }
            "#,
        )
        .unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 1, 32, 8);
        spec.shared_words = 8;
        let r = gpu.run(&spec, 4);
        assert!(r.status.is_completed());
        assert_eq!(r.word(0), 32);
        assert_eq!(r.word(1), 0);
        assert_eq!(r.word(2), 7);
    }

    #[test]
    fn errors_carry_positions() {
        let err = compile("kernel bad {\n  var x = ;\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert!(err.to_string().contains("2:"));
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = compile("kernel bad { global[0] = nope; }").unwrap_err();
        assert!(err.message.contains("nope"), "{err}");
    }

    #[test]
    fn fences_compile_to_ir_fences() {
        use wmm_sim::ir::{FenceLevel, Inst};
        let p = compile("kernel f { global[0] = 1; fence(); fence_block(); }").unwrap();
        assert_eq!(p.fence_count(), 2);
        // The two statements lower to the two rungs of the hierarchy:
        // fence() is the device fence, fence_block() the block fence.
        let levels: Vec<FenceLevel> = p
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Fence(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(levels, vec![FenceLevel::Device, FenceLevel::Block]);
    }

    #[test]
    fn scoped_litmus_source_with_block_fences_compiles_and_runs() {
        // A fence_block-hardened scoped MP in the kernel language, run
        // end to end: warp-0 lane 0 publishes through shared memory,
        // warp-1 lane 0 reads back; the block fences order the shared
        // accesses, so on an SC chip the result is whatever interleaving
        // produced — never the forbidden (1, 0).
        let p = compile(
            r#"
            kernel scoped_mp {
                if tid() % 32 == 0 {
                    if tid() / 32 == 0 {
                        shared[0] = 1;
                        fence_block();
                        shared[8] = 1;
                    }
                    if tid() / 32 == 1 {
                        var r0 = shared[8];
                        fence_block();
                        var r1 = shared[0];
                        global[0] = r0;
                        global[1] = r1;
                    }
                }
            }
            "#,
        )
        .unwrap();
        let mut gpu = Gpu::new(Chip::by_short("Titan").unwrap());
        let mut spec = LaunchSpec::app(p, 1, 64, 8);
        spec.shared_words = 16;
        for seed in 0..40 {
            let r = gpu.run(&spec, seed);
            assert!(r.status.is_completed());
            assert_ne!(
                (r.word(0), r.word(1)),
                (1, 0),
                "seed {seed}: block fences must forbid the scoped MP weak outcome"
            );
        }
    }
}
