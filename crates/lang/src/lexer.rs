//! Tokeniser for the kernel language.

use crate::{Error, Pos};

/// The kinds of token the language knows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (decimal or `0x…`).
    Int(u32),
    /// A punctuation or operator token, e.g. `"=="` or `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

const PUNCTS: [&str; 22] = [
    "==", "!=", "<=", ">=", "<<", ">>", "{", "}", "(", ")", "[", "]", ";", ",", "=", "+", "-", "*",
    "/", "%", "<", ">",
];
const EXTRA_PUNCTS: [&str; 3] = ["&", "|", "^"];

/// Tokenise `source`.
///
/// # Errors
///
/// Returns an [`Error`] on an unrecognised character or malformed
/// number.
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
                col += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            out.push(Token {
                kind: TokenKind::Ident(text),
                pos,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let hex = c == '0' && bytes.get(i + 1).map(|c| *c == 'x') == Some(true);
            if hex {
                i += 2;
                col += 2;
            }
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                i += 1;
                col += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let value = if let Some(h) = text.strip_prefix("0x") {
                u32::from_str_radix(h, 16)
            } else {
                text.parse()
            }
            .map_err(|_| Error {
                pos,
                message: format!("invalid integer literal `{text}`"),
            })?;
            out.push(Token {
                kind: TokenKind::Int(value),
                pos,
            });
            continue;
        }
        // Punctuation: longest match first.
        let rest: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        let mut matched: Option<&str> = None;
        for p in PUNCTS.iter().chain(EXTRA_PUNCTS.iter()) {
            if rest.starts_with(p) {
                match matched {
                    Some(m) if m.len() >= p.len() => {}
                    _ => matched = Some(*p),
                }
            }
        }
        match matched {
            Some(p) => {
                out.push(Token {
                    kind: TokenKind::Punct(p),
                    pos,
                });
                i += p.len();
                col += p.len() as u32;
            }
            None => {
                return Err(Error {
                    pos,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_identifiers_numbers_puncts() {
        let toks = lex("kernel k { var x = 0x10 + 2; }").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Ident(s) if s == "kernel"));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Int(16))));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Int(2))));
        assert!(matches!(kinds.last(), Some(TokenKind::Eof)));
    }

    #[test]
    fn two_char_operators_win() {
        let toks = lex("a == b != c <= d >> e").unwrap();
        let puncts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", ">>"]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("x // comment\ny").unwrap();
        assert_eq!(toks.len(), 3); // x, y, eof
        assert_eq!(toks[1].pos.line, 2);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
    }

    #[test]
    fn bad_number_reported() {
        assert!(lex("0xzz").is_err());
        assert!(lex("12ab").is_err());
    }
}
