//! Abstract syntax of the kernel language.

use crate::Pos;
use wmm_sim::ir::Space;

/// A binary operator, spelled as in the source.
pub type BinOpName = &'static str;

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(u32),
    /// Variable reference.
    Var(String, Pos),
    /// `global[e]` load.
    GlobalLoad(Box<Expr>),
    /// `shared[e]` load.
    SharedLoad(Box<Expr>),
    /// A geometry intrinsic: `tid`, `bid`, `blockdim`, `griddim`, `gtid`.
    Intrinsic(&'static str),
    /// `cas(addr, cmp, val)` / `shared_cas(…)` — atomicCAS on the given
    /// memory space.
    Cas(Space, Box<Expr>, Box<Expr>, Box<Expr>),
    /// `exch(addr, val)` / `shared_exch(…)` — atomicExch.
    Exch(Space, Box<Expr>, Box<Expr>),
    /// `atomic_add(addr, val)` / `shared_add(…)` — atomicAdd.
    AtomicAdd(Space, Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(BinOpName, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x = e;` — introduce a variable.
    Var(String, Expr, Pos),
    /// `x = e;` — assign an existing variable.
    Assign(String, Expr, Pos),
    /// `global[a] = e;`
    GlobalStore(Expr, Expr),
    /// `shared[a] = e;`
    SharedStore(Expr, Expr),
    /// An expression evaluated for its effect (atomics).
    Expr(Expr),
    /// `fence();`
    Fence,
    /// `fence_block();`
    FenceBlock,
    /// `barrier();`
    Barrier,
    /// `if cond { … } else { … }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond { … }`.
    While(Expr, Vec<Stmt>),
}

/// A complete kernel: its name and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// The kernel's name.
    pub name: String,
    /// The statements of the body.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_construct() {
        let e = Expr::Bin(
            "+",
            Box::new(Expr::Int(1)),
            Box::new(Expr::Intrinsic("tid")),
        );
        let k = Kernel {
            name: "k".into(),
            body: vec![Stmt::GlobalStore(Expr::Int(0), e)],
        };
        assert_eq!(k.name, "k");
        assert_eq!(k.body.len(), 1);
    }
}
