//! Lowering from the AST to the `wmm-sim` IR.

use crate::ast::{Expr, Kernel, Stmt};
use crate::{Error, Pos};
use std::collections::HashMap;
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::{BinOp, Reg};
use wmm_sim::Program;

/// Lower a parsed kernel to an IR program.
///
/// # Errors
///
/// Returns an [`Error`] for references to undefined variables or
/// redefinitions.
pub fn lower(kernel: &Kernel) -> Result<Program, Error> {
    let mut b = KernelBuilder::new(kernel.name.clone());
    let mut scope: HashMap<String, Reg> = HashMap::new();
    lower_block(&mut b, &mut scope, &kernel.body)?;
    b.finish().map_err(|e| Error {
        pos: Pos { line: 1, col: 1 },
        message: format!("internal lowering error: {e}"),
    })
}

fn lower_block(
    b: &mut KernelBuilder,
    scope: &mut HashMap<String, Reg>,
    stmts: &[Stmt],
) -> Result<(), Error> {
    for stmt in stmts {
        lower_stmt(b, scope, stmt)?;
    }
    Ok(())
}

fn lower_stmt(
    b: &mut KernelBuilder,
    scope: &mut HashMap<String, Reg>,
    stmt: &Stmt,
) -> Result<(), Error> {
    match stmt {
        Stmt::Var(name, init, pos) => {
            if scope.contains_key(name) {
                return Err(Error {
                    pos: *pos,
                    message: format!("variable `{name}` is already defined"),
                });
            }
            let v = lower_expr(b, scope, init)?;
            // Give the variable its own register so later assignments
            // don't alias the initialiser.
            let slot = b.mov(v);
            scope.insert(name.clone(), slot);
        }
        Stmt::Assign(name, value, pos) => {
            let Some(&slot) = scope.get(name) else {
                return Err(Error {
                    pos: *pos,
                    message: format!("assignment to undefined variable `{name}`"),
                });
            };
            let v = lower_expr(b, scope, value)?;
            b.assign(slot, v);
        }
        Stmt::GlobalStore(addr, value) => {
            let a = lower_expr(b, scope, addr)?;
            let v = lower_expr(b, scope, value)?;
            b.store_global(a, v);
        }
        Stmt::SharedStore(addr, value) => {
            let a = lower_expr(b, scope, addr)?;
            let v = lower_expr(b, scope, value)?;
            b.store_shared(a, v);
        }
        Stmt::Expr(e) => {
            let _ = lower_expr(b, scope, e)?;
        }
        Stmt::Fence => b.fence_device(),
        Stmt::FenceBlock => b.fence_block(),
        Stmt::Barrier => b.barrier(),
        Stmt::If(cond, then, els) => {
            let c = lower_expr(b, scope, cond)?;
            // Lower both arms with child scopes (variables do not leak).
            let mut err = None;
            if els.is_empty() {
                b.if_(c, |b| {
                    let mut inner = scope.clone();
                    if let Err(e) = lower_block(b, &mut inner, then) {
                        err = Some(e);
                    }
                });
            } else {
                let mut err2 = None;
                b.if_else(
                    c,
                    |b| {
                        let mut inner = scope.clone();
                        if let Err(e) = lower_block(b, &mut inner, then) {
                            err = Some(e);
                        }
                    },
                    |b| {
                        let mut inner = scope.clone();
                        if let Err(e) = lower_block(b, &mut inner, els) {
                            err2 = Some(e);
                        }
                    },
                );
                if let Some(e) = err2 {
                    return Err(e);
                }
            }
            if let Some(e) = err {
                return Err(e);
            }
        }
        Stmt::While(cond, body) => {
            let mut head_err = None;
            let mut body_err = None;
            let head_scope = scope.clone();
            b.while_(
                |b| {
                    let mut inner = head_scope.clone();
                    match lower_expr(b, &mut inner, cond) {
                        Ok(r) => r,
                        Err(e) => {
                            head_err = Some(e);
                            b.const_(0)
                        }
                    }
                },
                |b| {
                    let mut inner = head_scope.clone();
                    if let Err(e) = lower_block(b, &mut inner, body) {
                        body_err = Some(e);
                    }
                },
            );
            if let Some(e) = head_err {
                return Err(e);
            }
            if let Some(e) = body_err {
                return Err(e);
            }
        }
    }
    Ok(())
}

fn lower_expr(
    b: &mut KernelBuilder,
    scope: &mut HashMap<String, Reg>,
    expr: &Expr,
) -> Result<Reg, Error> {
    Ok(match expr {
        Expr::Int(v) => b.const_(*v),
        Expr::Var(name, pos) => {
            let Some(&slot) = scope.get(name) else {
                return Err(Error {
                    pos: *pos,
                    message: format!("undefined variable `{name}`"),
                });
            };
            slot
        }
        Expr::GlobalLoad(addr) => {
            let a = lower_expr(b, scope, addr)?;
            b.load_global(a)
        }
        Expr::SharedLoad(addr) => {
            let a = lower_expr(b, scope, addr)?;
            b.load_shared(a)
        }
        Expr::Intrinsic(name) => match *name {
            "tid" => b.tid(),
            "bid" => b.bid(),
            "blockdim" => b.block_dim(),
            "griddim" => b.grid_dim(),
            "gtid" => b.global_tid(),
            other => unreachable!("unknown intrinsic {other}"),
        },
        Expr::Cas(space, addr, cmp, val) => {
            let a = lower_expr(b, scope, addr)?;
            let c = lower_expr(b, scope, cmp)?;
            let v = lower_expr(b, scope, val)?;
            b.atomic_cas_in(*space, a, c, v)
        }
        Expr::Exch(space, addr, val) => {
            let a = lower_expr(b, scope, addr)?;
            let v = lower_expr(b, scope, val)?;
            b.atomic_exch_in(*space, a, v)
        }
        Expr::AtomicAdd(space, addr, val) => {
            let a = lower_expr(b, scope, addr)?;
            let v = lower_expr(b, scope, val)?;
            b.atomic_add_in(*space, a, v)
        }
        Expr::Bin(op, lhs, rhs) => {
            let l = lower_expr(b, scope, lhs)?;
            let r = lower_expr(b, scope, rhs)?;
            match *op {
                "+" => b.bin(BinOp::Add, l, r),
                "-" => b.bin(BinOp::Sub, l, r),
                "*" => b.bin(BinOp::Mul, l, r),
                "/" => b.bin(BinOp::DivU, l, r),
                "%" => b.bin(BinOp::RemU, l, r),
                "&" => b.bin(BinOp::And, l, r),
                "|" => b.bin(BinOp::Or, l, r),
                "^" => b.bin(BinOp::Xor, l, r),
                "<<" => b.bin(BinOp::Shl, l, r),
                ">>" => b.bin(BinOp::Shr, l, r),
                "==" => b.bin(BinOp::CmpEq, l, r),
                "!=" => b.bin(BinOp::CmpNe, l, r),
                "<" => b.bin(BinOp::CmpLtU, l, r),
                "<=" => b.bin(BinOp::CmpLeU, l, r),
                ">" => b.bin(BinOp::CmpLtU, r, l),
                ">=" => b.bin(BinOp::CmpLeU, r, l),
                other => unreachable!("unknown operator {other}"),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};

    fn compile(src: &str) -> Result<Program, Error> {
        lower(&parse(&lex(src)?)?)
    }

    #[test]
    fn lowers_all_operator_forms() {
        let p = compile(
            "kernel ops { var x = 1 + 2 - 3 * 4 / 5 % 6 & 7 | 8 ^ 9 << 1 >> 1; \
             var c = x == 1; c = x != 1; c = x < 1; c = x <= 1; c = x > 1; c = x >= 1; \
             global[0] = c; }",
        )
        .unwrap();
        assert!(p.len() > 20);
    }

    #[test]
    fn variable_scoping_in_blocks() {
        // A variable defined in an if-arm is not visible outside.
        let err = compile("kernel k { if 1 { var x = 2; } global[0] = x; }").unwrap_err();
        assert!(err.message.contains("undefined variable `x`"));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let err = compile("kernel k { var x = 1; var x = 2; }").unwrap_err();
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn while_condition_sees_outer_vars() {
        let p =
            compile("kernel k { var i = 0; while i < 3 { i = i + 1; } global[0] = i; }").unwrap();
        assert!(p.len() > 6);
    }
}
