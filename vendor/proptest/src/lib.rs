//! Offline stub of the subset of `proptest` 1.x used by this workspace.
//!
//! The build container has no crates-registry access, so this vendored
//! crate implements the pieces `tests/properties.rs` needs:
//!
//! * the [`Strategy`] trait with `prop_map`;
//! * strategies for integer ranges, tuples, and `collection::vec`;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   `x in strategy` bindings, and `prop_assert!`/`prop_assert_eq!`;
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each test runs `cases` deterministic samples drawn from a
//! fixed per-test seed, so failures reproduce across runs and machines.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies. Deterministic: seeded from the test
/// name so failures are stable across runs.
pub struct TestRng(pub SmallRng);

impl TestRng {
    pub fn from_name_and_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// `Just(v)`: always yields a clone of `v`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `vec(element, len_range)`: a Vec with length drawn from the range.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// The test-definition macro. Each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::from_name_and_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::new_value(&$strat, &mut rng);
                    )+
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(e) = result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed; inputs were drawn \
                             deterministically from the test name, so rerunning \
                             reproduces it",
                            case + 1, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..5, 1..12)) {
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn map_applies(n in (0u32..8, 0u32..8).prop_map(|(a, b)| a + b)) {
            prop_assert!(n <= 14);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name_and_case("t", 3);
        let mut b = TestRng::from_name_and_case("t", 3);
        let s = (0u32..100, 0u64..9);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
