//! Offline stub of the subset of `rand` 0.8 used by this workspace.
//!
//! The build container has no access to a crates registry, so this
//! vendored crate provides an API-compatible replacement for the calls
//! the workspace actually makes:
//!
//! * `rand::rngs::SmallRng` — here a xoshiro256++ generator seeded via
//!   splitmix64, matching the upstream crate's choice on 64-bit targets;
//! * `SeedableRng::{seed_from_u64, from_seed}`;
//! * `Rng::{gen, gen_range, gen_bool, fill}` for the primitive types and
//!   integer range shapes the simulator uses.
//!
//! Determinism is the only contract the workspace relies on: the same
//! seed always yields the same stream on every platform. The streams do
//! NOT bit-match the real `rand` crate (the workspace never depended on
//! that).

pub mod rngs {
    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }

        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng::from_state(s)
        }

        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as upstream rand does.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng::from_state([next(), next(), next(), next()])
        }
    }
}

/// Core generator trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1), 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range shapes accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in [0, n) by widening multiply (Lemire); unbiased
/// enough for simulation workloads and branch-free.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore> Rng for R {}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(
            (0..4).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..4).map(|_| c.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
