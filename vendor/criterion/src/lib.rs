//! Offline stub of the subset of `criterion` 0.5 used by this workspace.
//!
//! The build container has no crates-registry access, so this vendored
//! crate implements a real (if simple) measurement harness behind the
//! criterion API the benches use: `Criterion::default().sample_size(n)`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each `bench_function` does a short warm-up, then takes `sample_size`
//! timed samples (each sample batches enough iterations to run for at
//! least ~1 ms) and prints min/median/mean per-iteration times. No HTML
//! reports, no statistical regression analysis.

use std::time::{Duration, Instant};

/// Opaque wrapper preventing the optimiser from deleting a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_one(self.sample_size, &name.into(), &mut f);
        self
    }

    /// `cargo bench` passes harness CLI args (e.g. `--bench`); accept and
    /// ignore them like real criterion's `Criterion::configure_from_args`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(self.criterion.sample_size, &full, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Iterations to run per timed sample (calibrated by the harness).
    batch: u64,
    /// Total elapsed across the sample's batch.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(sample_size: usize, name: &str, f: &mut F) {
    // Calibrate: find a batch size that runs for at least ~1 ms so timer
    // resolution doesn't dominate, but cap the calibration work.
    let mut batch = 1u64;
    loop {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / batch as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<40} time: [min {} median {} mean {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        sample_size,
        batch,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
